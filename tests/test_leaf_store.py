"""The paged leaf store: per-leaf page bookkeeping and I/O charging."""

from __future__ import annotations

from repro.dataset.record import Record
from repro.index.leaf_store import LeafStore, PagedLeafStore
from repro.index.node import LeafNode
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import PageFile


def make_store(pool_pages: int = 16, per_page: int = 4):
    pagefile: PageFile[Record] = PageFile(page_bytes=per_page * 10, record_bytes=10)
    pool: BufferPool[Record] = BufferPool(pagefile, pool_pages * per_page * 10)
    return pagefile, pool, PagedLeafStore(pool)


def leaf_with(count: int, first_rid: int = 0) -> LeafNode:
    leaf = LeafNode()
    leaf.records = [
        Record(first_rid + i, (float(i),)) for i in range(count)
    ]
    leaf.recompute_mbr()
    return leaf


class TestDefaultStore:
    def test_noop_interface(self) -> None:
        store = LeafStore()
        leaf = leaf_with(3)
        store.on_create(leaf)
        store.on_append(leaf, leaf.records[0])
        store.on_split(leaf, leaf_with(1), leaf_with(2))
        store.on_rewrite(leaf)
        store.on_dissolve(leaf)  # all no-ops, nothing to assert beyond "no crash"


class TestPagedStore:
    def test_appends_fill_pages(self) -> None:
        _pagefile, _pool, store = make_store(per_page=4)
        leaf = LeafNode()
        for rid in range(10):
            record = Record(rid, (float(rid),))
            leaf.records.append(record)
            store.on_append(leaf, record)
        # ceil(10 / 4) = 3 pages.
        assert len(store.pages_of(leaf)) == 3

    def test_create_writes_all_pages(self) -> None:
        _pagefile, _pool, store = make_store(per_page=4)
        leaf = leaf_with(9)
        store.on_create(leaf)
        assert len(store.pages_of(leaf)) == 3

    def test_split_moves_pages(self) -> None:
        pagefile, _pool, store = make_store(per_page=4)
        old = leaf_with(8)
        store.on_create(old)
        old_pages = set(store.pages_of(old))
        left, right = leaf_with(4), leaf_with(4, first_rid=4)
        store.on_split(old, left, right)
        assert store.pages_of(old) == []
        assert len(store.pages_of(left)) == 1
        assert len(store.pages_of(right)) == 1
        # The old leaf's pages were released from the pagefile.
        assert all(
            page_id not in {*store.pages_of(left), *store.pages_of(right)}
            for page_id in old_pages
        )

    def test_rewrite_replaces_pages(self) -> None:
        _pagefile, _pool, store = make_store(per_page=4)
        leaf = leaf_with(8)
        store.on_create(leaf)
        leaf.records = leaf.records[:3]
        store.on_rewrite(leaf)
        assert len(store.pages_of(leaf)) == 1

    def test_dissolve_frees_everything(self) -> None:
        pagefile, _pool, store = make_store(per_page=4)
        leaf = leaf_with(8)
        store.on_create(leaf)
        store.on_dissolve(leaf)
        assert store.pages_of(leaf) == []

    def test_small_pool_charges_io(self) -> None:
        pagefile, pool, store = make_store(pool_pages=2, per_page=4)
        leaves = [leaf_with(8, first_rid=i * 10) for i in range(6)]
        for leaf in leaves:
            store.on_create(leaf)
        # Creating 6 x 2 pages through a 2-page pool must spill dirty pages.
        assert pagefile.stats.writes > 0
        # Revisiting the first leaf's pages now misses.
        before = pagefile.stats.reads
        store.on_rewrite(leaves[0])
        assert pagefile.stats.reads > before
