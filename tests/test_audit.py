"""Release audits: record schema, verdicts, strict mode, anonymizer wiring."""

from __future__ import annotations

import json

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.obs import (
    AUDIT_RECORD_KEYS,
    AUDIT_SCHEMA_VERSION,
    AUDITOR,
    AuditFailure,
    ReleaseAuditor,
    audit_release,
)
from tests.conftest import random_records


@pytest.fixture(autouse=True)
def _clean_global_auditor():
    """Keep the process-wide auditor off between tests."""
    yield
    AUDITOR.disable()
    AUDITOR.reset()


def _release_with_undersized_partition(schema) -> AnonymizedTable:
    """Two partitions, the smaller holding just 2 records (k=2 effective)."""
    records = random_records(10, seed=11)
    box = Box((0.0,) * 3, (100.0,) * 3)
    return AnonymizedTable(
        schema,
        [
            Partition.trusted(tuple(records[:8]), box),
            Partition.trusted(tuple(records[8:]), box),
        ],
    )


class TestAuditRecord:
    def test_record_schema_is_stable(self, medium_table: Table) -> None:
        release = RTreeAnonymizer.anonymize_table(medium_table, k=10)
        record = audit_release(release, k=10, base_k=5)
        assert set(record) == AUDIT_RECORD_KEYS
        assert record["schema_version"] == AUDIT_SCHEMA_VERSION
        # The record must be trail-writable as-is.
        json.dumps(record)

    def test_real_release_satisfies_k(self, medium_table: Table) -> None:
        release = RTreeAnonymizer.anonymize_table(medium_table, k=10)
        record = audit_release(release, k=10, base_k=5)
        assert record["k_satisfied"] is True
        assert record["k_effective"] >= 10
        assert record["problems"] == []
        assert record["partition_count"] == len(release.partitions)
        assert record["record_count"] == release.record_count
        assert record["occupancy"]["min"] >= 10
        assert 0.0 <= record["mbr_volume"]["max"] <= 1.0
        assert record["discernibility"] > 0
        # No original table supplied: certainty is unknown, not zero.
        assert record["certainty"] is None
        assert record["certainty_per_record"] is None

    def test_original_table_enables_full_verification(
        self, medium_table: Table
    ) -> None:
        release = RTreeAnonymizer.anonymize_table(medium_table, k=10)
        record = audit_release(release, k=10, original=medium_table)
        assert record["k_satisfied"] is True
        assert record["certainty"] is not None
        assert record["certainty_per_record"] == pytest.approx(
            record["certainty"] / release.record_count
        )

    def test_undersized_partition_fails_the_audit(self, schema3) -> None:
        release = _release_with_undersized_partition(schema3)
        record = audit_release(release, k=5)
        assert record["k_satisfied"] is False
        assert record["k_effective"] == 2
        assert record["problems"]


class TestReleaseAuditor:
    def test_collects_records_in_publish_order(self, schema3) -> None:
        release = _release_with_undersized_partition(schema3)
        auditor = ReleaseAuditor()
        auditor.enable()
        auditor.on_release(release, k=2)
        auditor.on_release(release, k=2)
        assert [record["sequence"] for record in auditor.records] == [0, 1]
        assert auditor.latest["sequence"] == 1
        assert auditor.failed_records() == []

    def test_strict_mode_raises_but_keeps_the_record(self, schema3) -> None:
        release = _release_with_undersized_partition(schema3)
        auditor = ReleaseAuditor()
        auditor.enable(strict=True)
        with pytest.raises(AuditFailure) as excinfo:
            auditor.on_release(release, k=5)
        assert excinfo.value.record["k_satisfied"] is False
        # The trail still shows what was rejected.
        assert len(auditor.records) == 1
        assert auditor.failed_records() == auditor.records

    def test_non_strict_mode_records_failures_silently(self, schema3) -> None:
        release = _release_with_undersized_partition(schema3)
        auditor = ReleaseAuditor()
        auditor.enable()
        record = auditor.on_release(release, k=5)
        assert record["k_satisfied"] is False
        assert len(auditor.failed_records()) == 1

    def test_reference_table_applies_to_every_audit(
        self, medium_table: Table
    ) -> None:
        release = RTreeAnonymizer.anonymize_table(medium_table, k=10)
        auditor = ReleaseAuditor()
        auditor.enable(reference=medium_table)
        record = auditor.on_release(release, k=10)
        assert record["certainty"] is not None


class TestAnonymizerWiring:
    def test_every_release_is_audited_when_enabled(
        self, medium_table: Table
    ) -> None:
        AUDITOR.enable(reference=medium_table)
        anonymizer = RTreeAnonymizer(medium_table, base_k=5)
        anonymizer.bulk_load(medium_table)
        for k in (5, 10, 25):
            anonymizer.anonymize(k)
        assert len(AUDITOR.records) == 3
        for record, k in zip(AUDITOR.records, (5, 10, 25)):
            assert record["k_requested"] == k
            assert record["base_k"] == 5
            assert record["k_satisfied"] is True
            assert record["problems"] == []

    def test_incremental_releases_carry_audit_records(self, schema3) -> None:
        records = random_records(1_200, seed=13)
        table = Table(schema3, records[:800])
        AUDITOR.enable(strict=True)
        anonymizer = RTreeAnonymizer(table, base_k=5)
        anonymizer.bulk_load(table)
        anonymizer.anonymize(10)
        anonymizer.insert_batch(records[800:])
        anonymizer.anonymize(10)
        assert len(AUDITOR.records) == 2
        assert all(record["k_satisfied"] for record in AUDITOR.records)
        assert AUDITOR.records[1]["record_count"] == 1_200

    def test_disabled_auditor_collects_nothing(self, medium_table: Table) -> None:
        assert not AUDITOR.enabled
        RTreeAnonymizer.anonymize_table(medium_table, k=10)
        assert AUDITOR.records == []
