"""The quadtree substrate and its anonymizer."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.index.quadtree import QuadTree, QuadTreeAnonymizer, quadtree_anonymize
from repro.privacy.kanonymity import verify_release
from tests.conftest import random_records


def fresh_tree(capacity: int = 8, dims: int = 3) -> QuadTree:
    return QuadTree((0.0,) * dims, (100.0,) * dims, capacity=capacity)


class TestQuadTree:
    def test_parameter_validation(self) -> None:
        with pytest.raises(ValueError):
            QuadTree((0.0,), (1.0,), capacity=0)
        with pytest.raises(ValueError):
            QuadTree((0.0,), (1.0, 2.0), capacity=4)
        tree = fresh_tree()
        with pytest.raises(ValueError):
            tree.insert(Record(0, (1.0,)))

    def test_subdivision_produces_2_pow_d_children(self) -> None:
        tree = fresh_tree(capacity=4, dims=2)
        for record in random_records(30, dimensions=2, seed=1):
            tree.insert(record)
        tree.check_invariants()
        assert len(tree) == 30

    def test_leaves_cover_all_records(self) -> None:
        tree = fresh_tree(capacity=6)
        records = random_records(200, seed=2)
        tree.insert_all(records)
        tree.check_invariants()
        rids = sorted(r.rid for leaf in tree.leaves() for r in leaf.records)
        assert rids == list(range(200))

    def test_search_matches_linear_scan(self) -> None:
        tree = fresh_tree(capacity=6)
        records = random_records(300, seed=3)
        tree.insert_all(records)
        rng = random.Random(4)
        for _ in range(15):
            lows = tuple(float(rng.randint(0, 70)) for _ in range(3))
            highs = tuple(low + rng.randint(5, 30) for low in lows)
            box = Box(lows, highs)
            expected = sorted(r.rid for r in records if box.contains_point(r.point))
            assert sorted(r.rid for r in tree.search(box)) == expected

    def test_min_extent_caps_duplicate_depth(self) -> None:
        tree = QuadTree((0.0, 0.0), (100.0, 100.0), capacity=4, min_extent=1.0)
        for rid in range(50):
            tree.insert(Record(rid, (5.0, 5.0)))
        tree.check_invariants()  # terminates: subdivision stops at min_extent

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 99), st.integers(0, 99)),
            min_size=1,
            max_size=200,
        )
    )
    def test_insert_property(self, points) -> None:
        tree = QuadTree((0.0, 0.0), (100.0, 100.0), capacity=5)
        for rid, point in enumerate(points):
            tree.insert(Record(rid, (float(point[0]), float(point[1]))))
        tree.check_invariants()
        assert len(tree) == len(points)


class TestQuadTreeAnonymizer:
    @pytest.fixture
    def table3(self, schema3) -> Table:
        return Table(schema3, random_records(500, seed=5))

    def test_release_passes_audit(self, table3) -> None:
        for k in (5, 10):
            release = quadtree_anonymize(table3, k)
            assert verify_release(release, table3, k) == []

    def test_parameter_validation(self, table3, schema3) -> None:
        with pytest.raises(ValueError):
            QuadTreeAnonymizer(Table(schema3))
        with pytest.raises(ValueError):
            QuadTreeAnonymizer(table3, capacity_factor=1)
        with pytest.raises(ValueError):
            quadtree_anonymize(table3, 0)
        with pytest.raises(ValueError):
            quadtree_anonymize(table3, len(table3) + 1)

    def test_rtree_beats_quadtree_on_clustered_data(self) -> None:
        """The §6 point, inverted: data-aware splits beat data-oblivious
        midpoint splits where the data is clustered."""
        from repro.core.anonymizer import RTreeAnonymizer
        from repro.dataset.landsend import make_landsend_table
        from repro.dataset.schema import Attribute, Schema
        from repro.metrics.certainty import certainty_penalty

        full = make_landsend_table(2_000, seed=6)
        schema = Schema(
            (
                Attribute.numeric("zipcode", 501, 99_950),
                Attribute.numeric("price", 1, 500),
                Attribute.numeric("cost", 1, 6_000),
            )
        )
        table = Table.from_points(
            schema, [(r.point[0], r.point[4], r.point[6]) for r in full]
        )
        quadtree_release = quadtree_anonymize(table, 10)
        anonymizer = RTreeAnonymizer(table, base_k=10, leaf_capacity=19)
        anonymizer.bulk_load(table)
        rtree_release = anonymizer.anonymize(10)
        assert certainty_penalty(rtree_release, table) < certainty_penalty(
            quadtree_release, table
        )
