"""Leaf scan (Figure 5) and the cut-aligned subtree scan."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.leafscan import leaf_scan, subtree_scan
from repro.dataset.record import Record
from repro.index.buffer_tree import BufferTreeLoader
from repro.index.rtree import RPlusTree
from repro.privacy.ldiversity import DistinctLDiversity
from tests.conftest import random_records


def groups_of(sizes: list[int]) -> list[list[Record]]:
    rid = 0
    groups = []
    for size in sizes:
        group = [Record(rid + i, (float(rid + i),)) for i in range(size)]
        rid += size
        groups.append(group)
    return groups


class TestLeafScan:
    def test_whole_leaves_in_order(self) -> None:
        leaves = groups_of([5, 5, 5, 5])
        partitions = leaf_scan(leaves, k1=10)
        assert [len(p) for p in partitions] == [10, 10]
        # Sequential order, whole leaves: rids are consecutive runs.
        rids = [r.rid for p in partitions for r in p]
        assert rids == sorted(rids)

    def test_group_closes_at_k1_and_small_tail_folds(self) -> None:
        # First group closes at 12 (>= k1); the remaining 6 < k1, so LS4
        # folds it into the open group rather than closing: one group of 18.
        leaves = groups_of([6, 6, 6])
        partitions = leaf_scan(leaves, k1=10)
        assert [len(p) for p in partitions] == [18]
        # With a fourth leaf, the tail (12 >= k1) forms its own group.
        partitions = leaf_scan(groups_of([6, 6, 6, 6]), k1=10)
        assert [len(p) for p in partitions] == [12, 12]

    def test_tail_folds_into_last_group(self) -> None:
        # 5+5 closes a group; remaining 3 < k1 joins it (Figure 5 step LS4).
        leaves = groups_of([5, 5, 3])
        partitions = leaf_scan(leaves, k1=10)
        assert [len(p) for p in partitions] == [13]

    def test_k1_equal_total(self) -> None:
        leaves = groups_of([4, 4])
        partitions = leaf_scan(leaves, k1=8)
        assert [len(p) for p in partitions] == [8]

    def test_insufficient_records_rejected(self) -> None:
        with pytest.raises(ValueError):
            leaf_scan(groups_of([3, 3]), k1=10)

    def test_invalid_k1_rejected(self) -> None:
        with pytest.raises(ValueError):
            leaf_scan(groups_of([5]), k1=0)

    def test_constraint_extends_groups(self) -> None:
        # Make every leaf single-diagnosis; 2-diversity forces merging
        # across leaves until two distinct values meet.
        leaves = groups_of([5, 5, 5, 5])
        for index, leaf in enumerate(leaves):
            diagnosis = "flu" if index % 2 == 0 else "cold"
            leaves[index] = [
                Record(r.rid, r.point, (diagnosis,)) for r in leaf
            ]
        partitions = leaf_scan(leaves, k1=5, constraint=DistinctLDiversity(2))
        assert all(len(p) >= 5 for p in partitions)
        for partition in partitions:
            assert len({r.sensitive[0] for r in partition}) >= 2

    def test_unsatisfiable_constraint_rejected(self) -> None:
        leaves = groups_of([5, 5])
        with pytest.raises(ValueError):
            leaf_scan(leaves, k1=5, constraint=lambda records: False)

    @settings(max_examples=60)
    @given(
        st.lists(st.integers(2, 9), min_size=1, max_size=25),
        st.integers(2, 30),
    )
    def test_partition_floor_property(self, sizes: list[int], k1: int) -> None:
        leaves = groups_of(sizes)
        total = sum(sizes)
        if total < k1:
            with pytest.raises(ValueError):
                leaf_scan(leaves, k1)
            return
        partitions = leaf_scan(leaves, k1)
        assert all(len(p) >= k1 for p in partitions)
        assert sum(len(p) for p in partitions) == total
        # Whole leaves in order: concatenated rids are 0..total-1.
        rids = [r.rid for p in partitions for r in p]
        assert rids == list(range(total))


class TestSubtreeScan:
    def make_tree(self, count: int, k: int = 3, seed: int = 1) -> RPlusTree:
        tree = RPlusTree(dimensions=3, k=k, domain_extents=(100.0,) * 3)
        BufferTreeLoader(tree).load(random_records(count, seed=seed), charge_input=False)
        return tree

    def test_floor_and_coverage(self) -> None:
        tree = self.make_tree(800)
        for k1 in (3, 7, 20, 50):
            groups = subtree_scan(tree, k1)
            assert all(len(g) >= k1 for g in groups)
            assert sum(len(g) for g in groups) == 800

    def test_groups_are_consecutive_whole_leaves(self) -> None:
        """The Lemma 1 prerequisite: groups = whole leaves, in leaf order."""
        tree = self.make_tree(600)
        leaf_rids = [
            [r.rid for r in leaf.records] for leaf in tree.leaves()
        ]
        groups = subtree_scan(tree, 12)
        flattened = [rid for group in groups for rid in (r.rid for r in group)]
        expected = [rid for leaf in leaf_rids for rid in leaf]
        assert flattened == expected
        # Group boundaries never cut a leaf in half.
        boundaries = set()
        position = 0
        for group in groups:
            position += len(group)
            boundaries.add(position)
        leaf_ends = set()
        position = 0
        for leaf in leaf_rids:
            position += len(leaf)
            leaf_ends.add(position)
        assert boundaries <= leaf_ends

    def test_group_sizes_bounded(self) -> None:
        tree = self.make_tree(900)
        k1 = 15
        groups = subtree_scan(tree, k1)
        # Bound: a group is at most 2*k1 - 1 records plus one whole leaf
        # (the carry can force one extra leaf in).
        biggest_leaf = max(len(leaf.records) for leaf in tree.leaves())
        assert max(len(g) for g in groups) <= 2 * k1 - 1 + biggest_leaf

    def test_less_box_overlap_than_sequential_scan(self) -> None:
        """The quality property motivating the subtree strategy: aligning
        group boundaries with the cut hierarchy leaves strictly fewer
        volume-overlapping partition-box pairs than the sequential scan."""
        from repro.geometry.box import Box

        def volume_overlaps(groups) -> int:
            boxes = [Box.from_points(r.point for r in g) for g in groups]
            count = 0
            for i, a in enumerate(boxes):
                for b in boxes[i + 1 :]:
                    overlap = a.intersection(b)
                    if overlap is not None and overlap.area() > 0:
                        count += 1
            return count

        tree = self.make_tree(1_000, seed=5)
        for k1 in (12, 25):
            sequential = leaf_scan([l.records for l in tree.leaves()], k1)
            aligned = subtree_scan(tree, k1)
            assert volume_overlaps(aligned) < volume_overlaps(sequential)

    def test_too_few_records_rejected(self) -> None:
        tree = RPlusTree(dimensions=3, k=3)
        with pytest.raises(ValueError):
            subtree_scan(tree, 5)

    def test_constraint_respected(self) -> None:
        tree = self.make_tree(400)
        constraint = DistinctLDiversity(2)
        groups = subtree_scan(tree, 5, constraint)
        assert all(constraint(g) for g in groups)
