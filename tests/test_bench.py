"""The bench harness: table formatting, figure drivers (tiny sizes), CLI."""

from __future__ import annotations

import pytest

from repro.bench import figures
from repro.bench.runner import BenchTable, Timer, best_of, environment_report
from repro.cli import main


class TestRunner:
    def test_timer_measures(self) -> None:
        with Timer() as timer:
            sum(range(10_000))
        assert timer.elapsed > 0

    def test_best_of_returns_minimum(self) -> None:
        calls = []

        def action() -> None:
            calls.append(1)

        elapsed = best_of(3, action)
        assert len(calls) == 3
        assert elapsed >= 0

    def test_table_shape_enforced(self) -> None:
        table = BenchTable("t", ["a", "b"])
        table.add(1, 2)
        with pytest.raises(ValueError):
            table.add(1)

    def test_table_rendering(self) -> None:
        table = BenchTable("demo", ["k", "value"])
        table.add(5, 1234.5678)
        table.add(10, float("nan"))
        rendered = table.render()
        assert "demo" in rendered
        assert "1,235" in rendered  # compact thousands formatting
        assert "-" in rendered  # NaN renders as a dash

    def test_environment_report(self) -> None:
        table = environment_report()
        assert any("CPython" in str(row[1]) for row in table.rows)


class TestFigureDrivers:
    """Every driver runs at toy sizes and yields a well-formed table.

    Shape assertions live in ``benchmarks/``; here the contract is: right
    columns, right row count, no crashes at small scale.
    """

    def test_fig7a(self) -> None:
        table = figures.fig7a_bulk_times(records=1_500, ks=(5, 10))
        assert len(table.rows) == 2
        assert "mondrian (s)" in table.headers

    def test_fig7a_kernels(self) -> None:
        table = figures.fig7a_kernels(
            records=3_000, scalar_sample=500, batch_size=512
        )
        assert [row[0] for row in table.rows] == [
            "encode", "decode", "hilbert keying",
        ]
        # The match column is the bit-identity cross-check on the shared
        # slice; any "NO" means a kernel diverged from its scalar oracle.
        assert all(row[-1] == "yes" for row in table.rows)
        assert set(table.extras) == {
            "encode_speedup", "decode_speedup", "keying_speedup",
        }

    def test_fig7b(self) -> None:
        table = figures.fig7b_incremental_times(batches=3, batch_size=400, k=5)
        assert len(table.rows) == 3
        assert table.rows[-1][1] == 1_200  # cumulative record count

    def test_fig8a(self) -> None:
        table = figures.fig8a_scaling(sizes=(500, 1_000), k=5)
        assert [row[0] for row in table.rows] == [500, 1_000]

    def test_fig8b(self) -> None:
        table = figures.fig8b_io_costs(records=2_000, k=5)
        assert len(table.rows) == 4
        assert all(row[3] == row[1] + row[2] for row in table.rows)

    def test_fig9(self) -> None:
        table = figures.fig9_compaction_cost(sample_sizes=(500, 1_000), k=5)
        assert all(0 <= row[3] <= 100 for row in table.rows)

    def test_fig10(self) -> None:
        table = figures.fig10_quality(records=1_500, ks=(5,))
        algorithms = {row[1] for row in table.rows}
        assert algorithms == {"rtree", "mondrian", "mondrian+compact"}

    def test_fig11(self) -> None:
        table = figures.fig11_incremental_quality(batches=2, batch_size=500, k=5)
        assert len(table.rows) == 4  # 2 batches x 2 algorithms

    def test_fig12a(self) -> None:
        table = figures.fig12a_query_error(records=1_500, ks=(5,), queries=50)
        assert len(table.rows) == 1

    def test_fig12b(self) -> None:
        table = figures.fig12b_selectivity(records=1_500, k=5, queries=50)
        assert len(table.rows) >= 3

    def test_fig12c(self) -> None:
        table = figures.fig12c_biased(records=1_500, ks=(5,), queries=50)
        assert len(table.rows) == 1

    def test_fig12d(self) -> None:
        table = figures.fig12d_biased_selectivity(records=1_500, k=5, queries=50)
        assert len(table.rows) >= 3

    def test_ablation_bulkload(self) -> None:
        table = figures.ablation_bulkload(records=1_500, k=5)
        assert {str(row[0]) for row in table.rows} == {
            "buffer-tree",
            "hilbert sort",
            "STR",
        }

    def test_ablation_split(self) -> None:
        table = figures.ablation_split(records=1_500, k=5)
        assert len(table.rows) == 5

    def test_multigranular(self) -> None:
        table = figures.multigranular_report(
            records=1_500, base_k=5, granularities=(5, 10)
        )
        assert len(table.rows) >= 3

    def test_registry_covers_every_driver(self) -> None:
        assert set(figures.DRIVERS) == {
            "fig7a", "fig7a_parallel", "fig7a_kernels", "fig7b",
            "fig8a", "fig8b", "fig9", "fig10", "fig11",
            "fig12a", "fig12b", "fig12c", "fig12d",
            "ablation-bulkload", "ablation-split", "ablation-gridfile",
            "ablation-estimator", "ablation-weighted", "ablation-indexes",
            "ablation-loading", "multigranular", "recovery", "serve",
            "serve_cluster", "query_bench",
        }

    def test_recovery_bench(self, tmp_path, monkeypatch) -> None:
        monkeypatch.chdir(tmp_path)
        table = figures.recovery_bench(records=1_000, tail_ops=(0, 100), k=5)
        assert len(table.rows) == 2
        assert all(row[-1] == "yes" for row in table.rows)  # digest match

    def test_serve_bench(self) -> None:
        table = figures.serve_bench(
            records=1_000,
            write_rounds=2,
            write_batch=50,
            reads_per_round=5,
            ks=(5, 10),
            repeats=1,
        )
        assert [str(row[0]) for row in table.rows] == [
            "on", "off", "on+telemetry",
        ]
        cached, uncached, telemetry = table.rows
        assert cached[5] > 0  # the cache actually hit
        assert uncached[5] == 0  # and was actually off
        assert telemetry[5] > 0  # the telemetry run still serves cached
        # The overhead delta rides along for the regression trail.
        assert {
            "telemetry_off_reads_per_s",
            "telemetry_on_reads_per_s",
            "telemetry_overhead",
        } <= set(table.extras)
        assert table.extras["telemetry_overhead"] < 1.0
        # So do the p50/p90/p99 serving-latency sketches (the bench owns
        # the registry when the caller has not enabled it).
        for short in ("queue_wait", "commit", "release"):
            for q in ("p50", "p90", "p99"):
                assert table.extras[f"{short}_{q}"] >= 0
        assert table.extras["commit_p99"] > 0
        assert table.extras["wal_fsync_p99"] == 0  # no durability dir here
        rendered = table.render()
        assert "telemetry_overhead" in rendered
        assert "commit_p99" in rendered

    def test_query_bench(self) -> None:
        table = figures.query_bench(
            records=800,
            queries=40,
            ks=(10,),
            reader_counts=(2,),
            write_batch=50,
            reader_batch=10,
            seed=1,
        )
        # One accuracy row per k plus one throughput row per reader count.
        assert len(table.rows) == 2
        accuracy, throughput = table.rows
        assert accuracy[5] == "match"  # pushdown == leaf-scan oracle
        assert table.extras["oracle_match"] == 1.0
        assert table.extras["nodes_pruned"] > 0  # the index actually pruned
        assert table.extras["qps_2"] > 0
        assert throughput[6] > 0


class TestCLI:
    def test_list(self, capsys) -> None:
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig10" in output and "table1" in output

    def test_table1(self, capsys) -> None:
        assert main(["table1"]) == 0
        assert "CPython" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys) -> None:
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_figure_with_overrides(self, capsys) -> None:
        assert main(["fig12a", "--records", "600", "--queries", "20"]) == 0
        assert "Figure 12(a)" in capsys.readouterr().out

    def test_inapplicable_overrides_ignored(self, capsys) -> None:
        # The multigranular driver takes no --k parameter; it must be
        # silently dropped rather than crash the call.
        assert main(["multigranular", "--records", "800", "--k", "3"]) == 0
        assert "Multi-granular" in capsys.readouterr().out

    def test_csv_output(self, capsys, tmp_path) -> None:
        target = tmp_path / "rows.csv"
        assert main(
            ["fig12a", "--records", "600", "--queries", "20", "--csv", str(target)]
        ) == 0
        capsys.readouterr()
        lines = target.read_text().strip().splitlines()
        assert lines[0].startswith("experiment,title,k")
        assert all(line.startswith("fig12a,") for line in lines[1:])
        assert len(lines) > 1
