"""Multi-granular releases, k-boundedness and the intersection attack (§3)."""

from __future__ import annotations

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.multigranular import (
    hierarchical_granularities,
    hierarchical_release,
    min_candidate_set_size,
    verify_k_bound,
)
from repro.dataset.table import Table
from repro.privacy.attack import intersection_attack
from repro.privacy.kanonymity import verify_release
from tests.conftest import random_records


@pytest.fixture
def loaded(medium_table: Table) -> RTreeAnonymizer:
    anonymizer = RTreeAnonymizer(medium_table, base_k=5)
    anonymizer.bulk_load(medium_table)
    return anonymizer


class TestHierarchicalRelease:
    def test_level_zero_is_the_leaves(self, loaded, medium_table) -> None:
        release = hierarchical_release(loaded.tree, 0, medium_table.schema)
        assert len(release.partitions) == loaded.leaf_count()
        assert release.k_effective >= loaded.base_k

    def test_higher_levels_coarser(self, loaded, medium_table) -> None:
        previous_partitions = None
        for level in range(loaded.tree.height + 1):
            release = hierarchical_release(loaded.tree, level, medium_table.schema)
            assert release.record_count == len(medium_table)
            if previous_partitions is not None:
                assert len(release.partitions) < previous_partitions
            previous_partitions = len(release.partitions)

    def test_missing_level_rejected(self, loaded, medium_table) -> None:
        with pytest.raises(ValueError):
            hierarchical_release(loaded.tree, 99, medium_table.schema)

    def test_granularities_monotone(self, loaded) -> None:
        pairs = hierarchical_granularities(loaded.tree)
        levels = [level for level, _g in pairs]
        guarantees = [guarantee for _l, guarantee in pairs]
        assert levels == sorted(levels)
        assert guarantees == sorted(guarantees)
        assert guarantees[0] >= loaded.base_k

    def test_levels_nest(self, loaded, medium_table) -> None:
        """Each level-i partition is a union of level-(i-1) partitions —
        the structural fact behind Lemma 1's hierarchical instance."""
        fine = hierarchical_release(loaded.tree, 0, medium_table.schema)
        coarse = hierarchical_release(loaded.tree, 1, medium_table.schema)
        coarse_of = coarse.rid_to_partition()
        for partition in fine.partitions:
            containers = {coarse_of[rid] for rid in partition.rids()}
            assert len(containers) == 1


class TestKBound:
    def test_tree_releases_are_k_bound(self, loaded) -> None:
        releases = [loaded.anonymize(k) for k in (5, 10, 25, 60)]
        assert verify_k_bound(releases, loaded.base_k)

    def test_mixed_strategies_still_k_bound(self, loaded, medium_table) -> None:
        releases = [
            loaded.anonymize(10),
            loaded.anonymize(25, strategy="sequential"),
            hierarchical_release(loaded.tree, 1, medium_table.schema),
        ]
        assert verify_k_bound(releases, loaded.base_k)

    def test_crossing_partitionings_break_k_bound(self, schema3) -> None:
        """The §3 warning, distilled: two individually 2-anonymous releases
        whose groupings cross reduce every record's candidate set to 1."""
        from repro.core.partition import AnonymizedTable, Partition
        from repro.geometry.box import Box

        records = random_records(4, seed=0)
        box = Box((0.0,) * 3, (100.0,) * 3)

        def release(groups: list[list[int]]) -> AnonymizedTable:
            return AnonymizedTable(
                schema3,
                [
                    Partition(tuple(records[i] for i in group), box)
                    for group in groups
                ],
            )

        first = release([[0, 1], [2, 3]])
        second = release([[0, 2], [1, 3]])
        assert first.k_effective == 2 and second.k_effective == 2
        assert min_candidate_set_size([first, second]) == 1
        assert not verify_k_bound([first, second], 2)

    def test_single_release_candidates_equal_partition_sizes(self, loaded) -> None:
        release = loaded.anonymize(10)
        assert min_candidate_set_size([release]) == release.k_effective

    def test_empty_release_list_rejected(self) -> None:
        with pytest.raises(ValueError):
            min_candidate_set_size([])


class TestAttackReport:
    def test_report_fields(self, loaded) -> None:
        releases = [loaded.anonymize(k) for k in (5, 20)]
        report = intersection_attack(releases, thresholds=(3, 5, 10))
        assert report.releases == 2
        assert report.records == len(loaded)
        assert report.min_candidates >= 5
        assert report.preserves_k(5)
        assert report.compromised_below[5] == 0
        assert report.mean_candidates >= report.min_candidates

    def test_attack_finds_compromises(self, schema3) -> None:
        from repro.core.partition import AnonymizedTable, Partition
        from repro.geometry.box import Box

        records = random_records(6, seed=0)
        box = Box((0.0,) * 3, (100.0,) * 3)

        def release(groups: list[list[int]]) -> AnonymizedTable:
            return AnonymizedTable(
                schema3,
                [
                    Partition(tuple(records[i] for i in group), box)
                    for group in groups
                ],
            )

        crossing = [
            release([[0, 1, 2], [3, 4, 5]]),
            release([[0, 3, 4], [1, 2, 5]]),
        ]
        report = intersection_attack(crossing, thresholds=(2, 3))
        assert not report.preserves_k(3)
        assert report.compromised_below[2] > 0
        assert report.min_candidates == 1

    def test_releases_pass_individual_audit_yet_attack_differs(
        self, loaded, medium_table
    ) -> None:
        """Each release alone is k-anonymous; the *set* is the question."""
        releases = [loaded.anonymize(k) for k in (5, 10)]
        for release, k in zip(releases, (5, 10)):
            assert verify_release(release, medium_table, k) == []
        assert intersection_attack(releases).preserves_k(loaded.base_k)
