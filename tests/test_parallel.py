"""Units of the sharded parallel engine: planner, stitcher, scan, obs."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.dataset.io import RecordFileReader, write_table
from repro.dataset.landsend import make_landsend_table
from repro.index.bulk import DEFAULT_HILBERT_BITS, chunk_with_floor
from repro.parallel import (
    ShardRun,
    effective_pool_size,
    parallel_bulk_load,
    parallel_hilbert_partitions,
    plan_from_sample,
    plan_record_shards,
    scan_file_shards,
    scan_record_shards,
    shard_record_stream,
    slice_bounds,
    stitched_chunks,
)
from tests.conftest import random_records

LOWS = (0.0, 0.0, 0.0)
HIGHS = (100.0, 100.0, 100.0)


@pytest.fixture
def force_pool(monkeypatch):
    """Fork one process per slice even on single-CPU machines, so these
    tests genuinely cross the multiprocessing boundary."""
    monkeypatch.setenv("REPRO_PARALLEL_POOL", "force")


class TestPoolSizing:
    def test_capped_by_cpu_count(self, monkeypatch) -> None:
        monkeypatch.delenv("REPRO_PARALLEL_POOL", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert effective_pool_size(8, 8) == 2
        assert effective_pool_size(1, 8) == 1
        assert effective_pool_size(8, 1) == 1

    def test_force_overrides_the_cap(self, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_PARALLEL_POOL", "force")
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert effective_pool_size(8, 8) == 8
        assert effective_pool_size(8, 3) == 3


class TestPlanner:
    def test_single_shard_has_no_boundaries(self) -> None:
        plan = plan_record_shards(random_records(50), 1, LOWS, HIGHS, 10)
        assert plan.shard_count == 1
        assert plan.boundaries == ()
        assert plan.shard_of(0) == 0

    def test_boundaries_are_sample_quantiles(self) -> None:
        plan = plan_from_sample(list(range(100)), 4, LOWS, HIGHS, 10)
        assert plan.boundaries == (25, 50, 75)
        assert [plan.shard_of(key) for key in (0, 24, 25, 60, 99)] == [
            0,
            0,
            1,
            2,
            3,
        ]

    def test_equal_keys_land_in_one_shard(self) -> None:
        """A key equal to a boundary goes right — ties never split a key
        across shards, which the merge-order proof relies on."""
        plan = plan_from_sample([10] * 100, 4, LOWS, HIGHS, 10)
        shard = plan.shard_of(10)
        assert all(plan.shard_of(10) == shard for _ in range(5))

    def test_plan_balances_records_roughly(self) -> None:
        records = random_records(2_000, seed=3)
        plan = plan_record_shards(records, 4, LOWS, HIGHS, DEFAULT_HILBERT_BITS)
        counts = [0] * plan.shard_count
        for record in records:
            counts[plan.shard_of(plan.key_of(record.point))] += 1
        assert sum(counts) == 2_000
        # Quantile planning keeps every shard within ~2x of fair share.
        assert max(counts) <= 2 * (2_000 // 4)

    def test_zero_shards_rejected(self) -> None:
        with pytest.raises(ValueError):
            plan_from_sample([1, 2, 3], 0, LOWS, HIGHS, 10)

    def test_slice_bounds_tile_the_input(self) -> None:
        for total in (0, 1, 7, 100):
            for slices in (1, 2, 3, 8):
                bounds = slice_bounds(total, slices)
                assert bounds[0][0] == 0
                assert sum(count for _start, count in bounds) == total
                for (start, count), (next_start, _next) in zip(
                    bounds, bounds[1:]
                ):
                    assert next_start == start + count

    def test_slice_bounds_never_exceed_total(self) -> None:
        assert slice_bounds(2, 8) == [(0, 1), (1, 1)]
        with pytest.raises(ValueError):
            slice_bounds(10, 0)


class TestStitchedChunks:
    def _runs(self, records, cuts) -> list[ShardRun]:
        """Split a record list into ShardRuns at the given positions."""
        positions = [0, *cuts, len(records)]
        return [
            ShardRun(index, list(records[a:b]))
            for index, (a, b) in enumerate(zip(positions, positions[1:]))
        ]

    @given(
        st.integers(1, 12),
        st.integers(0, 150),
        st.lists(st.integers(0, 150), max_size=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_equals_serial_chunker_for_any_seams(
        self, k: int, count: int, raw_cuts: list[int]
    ) -> None:
        """The seam-repaired chunking of any shard split equals the global
        chunking of the concatenation — the boundary-repair guarantee."""
        records = random_records(count, seed=11)
        cuts = sorted(min(cut, count) for cut in raw_cuts)
        runs = self._runs(records, cuts)
        if count < k:
            with pytest.raises(ValueError):
                list(stitched_chunks(runs, k))
            return
        assert list(stitched_chunks(runs, k)) == chunk_with_floor(records, k)

    def test_straddling_records_bounded_by_2k(self) -> None:
        """At most 2k-1 records are ever carried across a seam: the carry
        is the residue of the records so far modulo the 2k chunk size."""
        k = 7
        records = random_records(100, seed=12)
        runs = self._runs(records, [33, 66])
        consumed = 0
        for run in runs[:-1]:
            consumed += len(run.records)
            assert consumed % (2 * k) < 2 * k
        assert list(stitched_chunks(runs, k)) == chunk_with_floor(records, k)

    def test_nonpositive_k_rejected(self) -> None:
        with pytest.raises(ValueError):
            list(stitched_chunks([ShardRun(0, random_records(5))], 0))


class TestScan:
    def test_runs_are_key_sorted_and_rid_tied(self) -> None:
        records = random_records(400, seed=13)
        scan = scan_record_shards(records, LOWS, HIGHS, workers=1, shards=3)
        plan = scan.plan
        seen = []
        for run in scan.runs:
            keyed = [(plan.key_of(r.point), r.rid) for r in run.records]
            assert keyed == sorted(keyed)
            for key, _rid in keyed:
                assert plan.shard_of(key) == run.index
            seen.extend(r.rid for r in run.records)
        assert sorted(seen) == [r.rid for r in records]
        assert scan.total == 400

    def test_stream_is_worker_count_invariant(self, force_pool) -> None:
        records = random_records(500, seed=14)
        reference = None
        for workers in (1, 2, 3, 4):
            scan = scan_record_shards(records, LOWS, HIGHS, workers=workers)
            stream = [r.rid for r in shard_record_stream(scan.runs)]
            if reference is None:
                reference = stream
            assert stream == reference, f"workers={workers} changed the order"

    def test_shard_count_independent_of_workers(self) -> None:
        records = random_records(300, seed=15)
        four = scan_record_shards(records, LOWS, HIGHS, workers=1, shards=4)
        pooled = scan_record_shards(records, LOWS, HIGHS, workers=2, shards=4)
        assert [run.records for run in four.runs] == [
            run.records for run in pooled.runs
        ]

    def test_file_scan_matches_record_scan(self, tmp_path, schema3, force_pool) -> None:
        from repro.dataset.table import Table

        records = random_records(350, seed=16)
        table = Table(schema3, records)
        path = str(tmp_path / "records.bin")
        write_table(table, path)
        from_file = scan_file_shards(path, LOWS, HIGHS, workers=2, shards=3)
        in_memory = scan_record_shards(records, LOWS, HIGHS, workers=2, shards=3)
        assert [[r.rid for r in run.records] for run in from_file.runs] == [
            [r.rid for r in run.records] for run in in_memory.runs
        ]

    def test_worker_stats_cover_every_record(self) -> None:
        records = random_records(200, seed=17)
        scan = scan_record_shards(records, LOWS, HIGHS, workers=2)
        assert sum(int(s["records"]) for s in scan.worker_stats) == 200
        assert all(float(s["seconds"]) >= 0 for s in scan.worker_stats)

    def test_zero_workers_rejected(self) -> None:
        with pytest.raises(ValueError):
            scan_record_shards(random_records(10), LOWS, HIGHS, workers=0)

    def test_more_workers_than_records(self) -> None:
        records = random_records(3, seed=18)
        scan = scan_record_shards(records, LOWS, HIGHS, workers=8)
        assert scan.total == 3
        assert sorted(r.rid for r in shard_record_stream(scan.runs)) == [0, 1, 2]


class TestEngineEntryPoints:
    def test_partitions_raise_below_k(self) -> None:
        with pytest.raises(ValueError, match="records < k"):
            parallel_hilbert_partitions(
                random_records(4), LOWS, HIGHS, k=5, workers=2
            )

    def test_bulk_load_counts_and_invariants(self) -> None:
        records = random_records(600, seed=19)
        tree = parallel_bulk_load(
            records,
            LOWS,
            HIGHS,
            k=5,
            workers=2,
            domain_extents=(100.0,) * 3,
        )
        tree.check_invariants()
        assert len(tree) == 600


class TestObservability:
    def teardown_method(self) -> None:
        obs.disable()
        obs.reset()
        obs.TRACE.disable()
        obs.TRACE.reset()

    def test_parallel_counters_recorded(self) -> None:
        obs.enable()
        records = random_records(300, seed=20)
        scan_record_shards(records, LOWS, HIGHS, workers=2, shards=2)
        assert obs.OBS.counter_value("parallel.shards") == 2
        assert obs.OBS.counter_value("parallel.shard_records") == 300
        assert obs.OBS.counter_value("parallel.worker_records") == 300
        assert obs.OBS.gauge_value("parallel.workers") == 2

    def test_worker_spans_merged_into_parent_trace(self, force_pool) -> None:
        obs.TRACE.enable()
        records = random_records(300, seed=21)
        scan_record_shards(records, LOWS, HIGHS, workers=2)
        names = obs.TRACE.event_names()
        assert "parallel.plan" in names
        assert "parallel.scan" in names
        assert "parallel.worker" in names
        assert "parallel.shard_merge" in names
        workers = [
            event
            for event in obs.TRACE.events()
            if event.name == "parallel.worker"
        ]
        assert len(workers) == 2
        assert all(event.parent == "parallel.scan" for event in workers)
        assert all(event.duration_us >= 0 for event in workers)

    def test_seam_repair_traced(self) -> None:
        obs.TRACE.enable()
        obs.enable()
        records = random_records(301, seed=22)
        parallel_hilbert_partitions(records, LOWS, HIGHS, k=5, workers=3)
        if obs.OBS.counter_value("parallel.seam_records"):
            assert "parallel.seam_repair" in obs.TRACE.event_names()

    def test_record_span_offset_mapping(self) -> None:
        import time

        tracer = obs.TRACE
        tracer.enable()
        now = time.perf_counter()
        tracer.record_span(
            "external.work",
            "test",
            start_us=tracer.offset_us(now),
            duration_us=1_234.0,
            parent="parent.span",
            args={"detail": 1},
        )
        (event,) = [e for e in tracer.events() if e.name == "external.work"]
        assert event.duration_us == 1_234.0
        assert event.parent == "parent.span"
        assert event.args == {"detail": 1}
        assert event.start_us == pytest.approx(tracer.offset_us(now))


class TestFileSliceReads:
    def test_iter_records_slice_matches_full_read(self, tmp_path, schema3) -> None:
        from repro.dataset.table import Table

        records = random_records(100, seed=23)
        path = str(tmp_path / "records.bin")
        write_table(Table(schema3, records), path)
        reader = RecordFileReader(path)
        full = list(reader.iter_records(batch_size=7))
        part = list(reader.iter_records(batch_size=7, start=30, count=40))
        assert [r.rid for r in part] == [r.rid for r in full[30:70]]
        assert [r.point for r in part] == [r.point for r in full[30:70]]

    def test_slice_rids_reflect_file_position(self, tmp_path, schema3) -> None:
        from repro.dataset.table import Table

        records = random_records(20, seed=24)
        path = str(tmp_path / "records.bin")
        write_table(Table(schema3, records), path)
        reader = RecordFileReader(path)
        sliced = list(reader.iter_records(first_rid=1_000, start=5, count=3))
        assert [r.rid for r in sliced] == [1_005, 1_006, 1_007]

    def test_invalid_slices_rejected(self, tmp_path, schema3) -> None:
        from repro.dataset.table import Table

        path = str(tmp_path / "records.bin")
        write_table(Table(schema3, random_records(10, seed=25)), path)
        reader = RecordFileReader(path)
        with pytest.raises(ValueError):
            list(reader.iter_records(start=-1))
        with pytest.raises(ValueError):
            list(reader.iter_records(start=5, count=6))


def test_anonymizer_file_load_with_workers(tmp_path, force_pool) -> None:
    """End to end through RTreeAnonymizer.bulk_load_file(workers=N)."""
    from repro.core.anonymizer import RTreeAnonymizer
    from repro.core.partition import release_digest

    table = make_landsend_table(800, seed=2)
    path = str(tmp_path / "landsend.bin")
    write_table(table, path)
    digests = set()
    for workers in (1, 2):
        anonymizer = RTreeAnonymizer(table, base_k=5)
        assert anonymizer.bulk_load_file(path, workers=workers) == 800
        digests.add(release_digest(anonymizer.anonymize(5)))
    assert len(digests) == 1
