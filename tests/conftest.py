"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table


@pytest.fixture
def schema3() -> Schema:
    """A small three-attribute numeric schema over [0, 100]^3."""
    return Schema(
        (
            Attribute.numeric("a", 0, 100),
            Attribute.numeric("b", 0, 100),
            Attribute.numeric("c", 0, 100),
        ),
        sensitive=("diagnosis",),
    )


def random_records(
    count: int, dimensions: int = 3, seed: int = 0, low: int = 0, high: int = 100
) -> list[Record]:
    """Reproducible integer-coded records with a one-column payload."""
    rng = random.Random(seed)
    diagnoses = ("flu", "anemia", "cancer", "whiplash")
    return [
        Record(
            rid,
            tuple(float(rng.randint(low, high)) for _ in range(dimensions)),
            (diagnoses[rng.randrange(len(diagnoses))],),
        )
        for rid in range(count)
    ]


@pytest.fixture
def small_table(schema3: Schema) -> Table:
    """200 random records over the three-attribute schema."""
    return Table(schema3, random_records(200, seed=1))


@pytest.fixture
def medium_table(schema3: Schema) -> Table:
    """2,000 random records over the three-attribute schema."""
    return Table(schema3, random_records(2_000, seed=2))
