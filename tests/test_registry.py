"""The release registry: cumulative collusion auditing."""

from __future__ import annotations

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.multigranular import hierarchical_release
from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.privacy.registry import ReleaseRegistry, ReleaseRejected
from tests.conftest import random_records


@pytest.fixture
def loaded(medium_table: Table) -> RTreeAnonymizer:
    anonymizer = RTreeAnonymizer(medium_table, base_k=5)
    anonymizer.bulk_load(medium_table)
    return anonymizer


class TestRegistry:
    def test_tree_releases_always_register(self, loaded, medium_table) -> None:
        registry = ReleaseRegistry(medium_table, pledge_k=5)
        for audience, k in (("lab", 5), ("partners", 20), ("web", 50)):
            report = registry.register(audience, loaded.anonymize(k), k)
            assert report.preserves_k(5)
        hierarchical = hierarchical_release(loaded.tree, 1, medium_table.schema)
        registry.register("auditors", hierarchical, 5)
        assert len(registry) == 4
        assert registry.is_safe()

    def test_below_pledge_rejected(self, loaded, medium_table) -> None:
        registry = ReleaseRegistry(medium_table, pledge_k=10)
        with pytest.raises(ReleaseRejected):
            registry.register("lab", loaded.anonymize(5), 5)

    def test_bogus_release_rejected_by_audit(self, medium_table) -> None:
        registry = ReleaseRegistry(medium_table, pledge_k=5)
        # A "release" that drops half the records fails the audit gate.
        truncated = AnonymizedTable(
            medium_table.schema,
            [
                Partition.trusted(
                    tuple(medium_table.records[:100]),
                    Box.from_points(r.point for r in medium_table.records[:100]),
                )
            ],
        )
        with pytest.raises(ReleaseRejected):
            registry.register("lab", truncated, 5)

    def test_crossing_release_rejected(self, schema3) -> None:
        """The enforcement moment: a second, crossing partitioning is
        refused because collusion would isolate records."""
        records = random_records(8, seed=0)
        table = Table(schema3, records)
        box = Box((0.0,) * 3, (100.0,) * 3)

        def release(groups: list[list[int]]) -> AnonymizedTable:
            return AnonymizedTable(
                schema3,
                [
                    Partition.trusted(tuple(records[i] for i in g), box)
                    for g in groups
                ],
            )

        registry = ReleaseRegistry(table, pledge_k=2)
        registry.register("a", release([[0, 1, 2, 3], [4, 5, 6, 7]]), 2)
        # Record 0's intersection would be {0} alone: candidate set of 1.
        with pytest.raises(ReleaseRejected):
            registry.register("b", release([[0, 4, 5, 6], [1, 2, 3, 7]]), 2)
        # The safe state is untouched by the rejected attempt.
        assert len(registry) == 1
        assert registry.is_safe()

    def test_audit_requires_releases(self, medium_table) -> None:
        registry = ReleaseRegistry(medium_table, pledge_k=5)
        assert registry.is_safe()  # vacuously
        with pytest.raises(ValueError):
            registry.audit()

    def test_invalid_pledge(self, medium_table) -> None:
        with pytest.raises(ValueError):
            ReleaseRegistry(medium_table, pledge_k=0)
