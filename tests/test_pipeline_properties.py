"""End-to-end property suite: fuzz the whole anonymization pipeline.

Hypothesis drives random tables, schemas, anonymity levels and operation
mixes through the full stack (generate -> load -> mutate -> release ->
audit -> score -> query) and checks the invariants that must hold for
*every* input, not just the benchmark workloads:

* every release passes the independent k-anonymity audit;
* compaction never enlarges boxes, never changes memberships, never hurts
  certainty or KL;
* the anonymized COUNT of any record-pair query is at least the original
  COUNT (whole-partition matching can only overcount);
* metrics respect their analytic bounds;
* multi-release sets from one index survive the intersection attack.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.compaction import compact_table
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.metrics.certainty import certainty_penalty
from repro.metrics.discernibility import (
    discernibility_lower_bound,
    discernibility_penalty,
)
from repro.metrics.kl import kl_divergence
from repro.privacy.attack import intersection_attack
from repro.privacy.kanonymity import verify_release
from repro.query.ranges import count_anonymized, count_original
from repro.query.workload import random_range_workload

#: Random integer tables: 2-4 dimensions, 20-150 records, small domains
#: (to force duplicate-heavy corner cases).
tables = st.integers(2, 4).flatmap(
    lambda dims: st.lists(
        st.tuples(*(st.integers(0, 25) for _ in range(dims))),
        min_size=20,
        max_size=150,
    )
)


def build_table(points: list[tuple[int, ...]]) -> Table:
    dims = len(points[0])
    schema = Schema(
        tuple(Attribute.numeric(f"a{d}", 0, 25) for d in range(dims)),
        sensitive=("s",),
    )
    table = Table(schema)
    for rid, point in enumerate(points):
        table.append(
            Record(rid, tuple(float(v) for v in point), (f"v{rid % 3}",))
        )
    return table


@settings(max_examples=30, deadline=None)
@given(tables, st.integers(2, 8))
def test_release_always_audits_clean(points, k) -> None:
    table = build_table(points)
    if len(table) < k:
        return
    release = RTreeAnonymizer.anonymize_table(table, k, base_k=min(3, k))
    assert verify_release(release, table, k) == []


@settings(max_examples=25, deadline=None)
@given(tables, st.integers(2, 6))
def test_compaction_monotone_everywhere(points, k) -> None:
    from repro.baselines.mondrian import mondrian_anonymize

    table = build_table(points)
    if len(table) < k:
        return
    release = mondrian_anonymize(table, k)
    compacted = compact_table(release)
    # Memberships identical, boxes never larger.
    for before, after in zip(release.partitions, compacted.partitions):
        assert before.rids() == after.rids()
        assert before.box.contains_box(after.box)
    # Box-sensitive metrics never get worse; discernibility frozen.
    assert certainty_penalty(compacted, table) <= certainty_penalty(release, table)
    assert kl_divergence(compacted, table) <= kl_divergence(release, table) + 1e-9
    assert discernibility_penalty(compacted) == discernibility_penalty(release)


@settings(max_examples=25, deadline=None)
@given(tables, st.integers(2, 5), st.integers(0, 10_000))
def test_anonymized_counts_never_undercount(points, k, seed) -> None:
    table = build_table(points)
    if len(table) < k:
        return
    release = RTreeAnonymizer.anonymize_table(table, k, base_k=min(3, k))
    for query in random_range_workload(table, 5, seed=seed):
        assert count_anonymized(query, release) >= count_original(query, table)


@settings(max_examples=25, deadline=None)
@given(tables, st.integers(2, 6))
def test_metric_bounds(points, k) -> None:
    table = build_table(points)
    if len(table) < k:
        return
    release = RTreeAnonymizer.anonymize_table(table, k, base_k=min(3, k))
    n = len(table)
    dm = discernibility_penalty(release)
    assert discernibility_lower_bound(n, k) <= dm <= n * n
    cm = certainty_penalty(release, table)
    assert 0.0 <= cm <= n * table.schema.dimensions
    assert kl_divergence(release, table) >= -1e-9


@settings(max_examples=15, deadline=None)
@given(tables)
def test_multigranular_releases_survive_the_attack(points) -> None:
    table = build_table(points)
    base_k = 2
    if len(table) < 12:
        return
    anonymizer = RTreeAnonymizer(table, base_k=base_k)
    anonymizer.bulk_load(table)
    granularities = [g for g in (2, 4, 8) if g <= len(table)]
    releases = [anonymizer.anonymize(g) for g in granularities]
    report = intersection_attack(releases)
    assert report.preserves_k(base_k)


@settings(max_examples=15, deadline=None)
@given(tables, st.data())
def test_release_after_churn_audits_clean(points, data) -> None:
    """Insert/delete churn, then release: the audit must still be clean."""
    table = build_table(points)
    if len(table) < 20:
        return
    anonymizer = RTreeAnonymizer(table, base_k=3)
    anonymizer.bulk_load(table)
    alive = {record.rid: record for record in table}
    # Random churn: up to 10 deletions and 10 fresh inserts.
    doomed = data.draw(
        st.lists(st.sampled_from(sorted(alive)), max_size=10, unique=True)
    )
    for rid in doomed:
        record = alive.pop(rid)
        anonymizer.delete(rid, record.point)
    dims = table.schema.dimensions
    fresh_points = data.draw(
        st.lists(
            st.tuples(*(st.integers(0, 25) for _ in range(dims))),
            max_size=10,
        )
    )
    for offset, point in enumerate(fresh_points):
        record = Record(
            100_000 + offset, tuple(float(v) for v in point), ("vX",)
        )
        anonymizer.insert(record)
        alive[record.rid] = record
    anonymizer.tree.check_invariants()
    k = 3
    if len(alive) < k:
        return
    survivors = Table(table.schema, list(alive.values()))
    release = anonymizer.anonymize(k)
    assert verify_release(release, survivors, k) == []
