"""Geometry: boxes, unions, intersections, margins — unit and property tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.box import Box, bounding_box, union_all


def box(*intervals: tuple[float, float]) -> Box:
    lows, highs = zip(*intervals)
    return Box(lows, highs)


class TestConstruction:
    def test_from_point_is_degenerate(self) -> None:
        b = Box.from_point((3, 4))
        assert b.lows == (3.0, 4.0)
        assert b.highs == (3.0, 4.0)
        assert b.area() == 0.0
        assert b.margin() == 0.0

    def test_from_points_bounds_all(self) -> None:
        b = Box.from_points([(1, 9), (4, 2), (0, 5)])
        assert b == box((0, 4), (2, 9))

    def test_from_points_rejects_empty(self) -> None:
        with pytest.raises(ValueError):
            Box.from_points([])

    def test_inverted_extent_rejected(self) -> None:
        with pytest.raises(ValueError):
            Box((5.0,), (4.0,))

    def test_dimension_mismatch_rejected(self) -> None:
        with pytest.raises(ValueError):
            Box((0.0,), (1.0, 2.0))

    def test_zero_dimensions_rejected(self) -> None:
        with pytest.raises(ValueError):
            Box((), ())


class TestMeasures:
    def test_area_is_product_of_extents(self) -> None:
        assert box((0, 2), (0, 3)).area() == 6.0

    def test_margin_is_sum_of_extents(self) -> None:
        assert box((0, 2), (0, 3)).margin() == 5.0

    def test_discrete_volume_counts_lattice_cells(self) -> None:
        # [20, 30] covers 11 integers, per the paper's interval notation.
        assert box((20, 30)).discrete_volume() == 11
        assert box((20, 30), (5, 5)).discrete_volume() == 11

    def test_center(self) -> None:
        assert box((0, 10), (2, 4)).center() == (5.0, 3.0)

    def test_extents(self) -> None:
        assert box((0, 10), (2, 4)).extents() == (10.0, 2.0)


class TestRelations:
    def test_contains_point_is_closed(self) -> None:
        b = box((0, 10), (0, 10))
        assert b.contains_point((0, 0))
        assert b.contains_point((10, 10))
        assert not b.contains_point((10.5, 5))

    def test_contains_box(self) -> None:
        outer = box((0, 10), (0, 10))
        assert outer.contains_box(box((2, 3), (2, 3)))
        assert outer.contains_box(outer)
        assert not outer.contains_box(box((2, 11), (2, 3)))

    def test_intersects_touching_boxes(self) -> None:
        # Closed boxes sharing only a face still intersect — the paper's
        # record [40-50] matches a query ending at 40.
        assert box((0, 5)).intersects(box((5, 9)))
        assert not box((0, 5)).intersects(box((6, 9)))

    def test_intersection_box(self) -> None:
        a = box((0, 5), (0, 5))
        b = box((3, 9), (4, 9))
        assert a.intersection(b) == box((3, 5), (4, 5))
        assert a.intersection(box((6, 9), (0, 5))) is None

    def test_union(self) -> None:
        assert box((0, 2)).union(box((5, 9))) == box((0, 9))

    def test_union_point(self) -> None:
        assert box((0, 2)).union_point((7,)) == box((0, 7))
        assert box((0, 2)).union_point((1,)) == box((0, 2))

    def test_enlargement(self) -> None:
        b = box((0, 10), (0, 10))
        assert b.enlargement((5, 5)) == 0.0
        assert b.enlargement((12, 5)) == 2.0
        assert b.enlargement((-1, 12)) == 3.0


class TestHelpers:
    def test_bounding_box(self) -> None:
        assert bounding_box([(0, 1), (2, 3)]) == box((0, 2), (1, 3))

    def test_union_all(self) -> None:
        boxes = [box((0, 1)), box((4, 6)), box((2, 3))]
        assert union_all(boxes) == box((0, 6))

    def test_union_all_empty_rejected(self) -> None:
        with pytest.raises(ValueError):
            union_all([])


points = st.lists(
    st.tuples(*(st.integers(-1000, 1000) for _ in range(3))), min_size=1, max_size=30
)


class TestProperties:
    @given(points)
    def test_mbr_contains_every_point(self, pts: list[tuple[int, ...]]) -> None:
        mbr = Box.from_points(pts)
        assert all(mbr.contains_point(p) for p in pts)

    @given(points, points)
    def test_union_contains_both(self, a: list, b: list) -> None:
        ba, bb = Box.from_points(a), Box.from_points(b)
        u = ba.union(bb)
        assert u.contains_box(ba) and u.contains_box(bb)

    @given(points, points)
    def test_union_is_commutative(self, a: list, b: list) -> None:
        ba, bb = Box.from_points(a), Box.from_points(b)
        assert ba.union(bb) == bb.union(ba)

    @given(points, points)
    def test_intersection_consistent_with_intersects(self, a: list, b: list) -> None:
        ba, bb = Box.from_points(a), Box.from_points(b)
        overlap = ba.intersection(bb)
        assert (overlap is not None) == ba.intersects(bb)
        if overlap is not None:
            assert ba.contains_box(overlap) and bb.contains_box(overlap)

    @given(points)
    def test_margin_and_area_nonnegative(self, pts: list) -> None:
        b = Box.from_points(pts)
        assert b.margin() >= 0.0
        assert b.area() >= 0.0
        assert b.discrete_volume() >= 1

    @given(points, st.tuples(*(st.integers(-1000, 1000) for _ in range(3))))
    def test_enlargement_matches_union_margin_growth(
        self, pts: list, extra: tuple[int, ...]
    ) -> None:
        b = Box.from_points(pts)
        grown = b.union_point(extra)
        assert grown.margin() - b.margin() == pytest.approx(b.enlargement(extra))
