"""The repro.api facade: open/load/release/recover, typed results."""

from __future__ import annotations

import pytest

import repro
from repro import api
from repro.dataset.io import RecordFileWriter
from repro.dataset.record import Record
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.durability import DurabilityConfig, RecoveryError
from tests.conftest import random_records


def staged_file(tmp_path, points):
    path = tmp_path / "data.bin"
    with RecordFileWriter(path, len(points[0])) as writer:
        writer.write_all(points)
    return path


def test_open_accepts_schema(schema3):
    handle = api.open(schema3, base_k=5)
    assert handle.schema is schema3
    assert handle.base_k == 5
    assert len(handle) == 0
    assert not handle.durable


def test_open_accepts_table_without_loading(schema3):
    table = Table(schema3, tuple(random_records(50, seed=1)))
    handle = api.open(table, base_k=5)
    assert len(handle) == 0  # open never ingests
    assert handle.load(table) == 50
    assert len(handle) == 50


def test_open_synthesizes_schema_from_file(tmp_path):
    points = [(float(i), float(100 - i)) for i in range(50)]
    path = staged_file(tmp_path, points)
    handle = api.open(path, base_k=5)
    lows = handle.schema.domain_lows()
    highs = handle.schema.domain_highs()
    assert lows == (0.0, 51.0)
    assert highs == (49.0, 100.0)
    assert handle.load(path) == 50


def test_open_rejects_other_types():
    with pytest.raises(TypeError, match="cannot open"):
        api.open(42)


def test_release_result_carries_audit_and_digest(schema3):
    table = Table(schema3, tuple(random_records(200, seed=2)))
    handle = api.open(table, base_k=5)
    handle.load(table)
    result = handle.release(k=10)
    assert isinstance(result, api.ReleaseResult)
    assert result.k == 10
    assert result.record_count == 200
    assert result.partition_count > 1
    assert result.k_satisfied
    assert result.audit["k_requested"] == 10
    assert len(result.digest) == 64
    # Same state, same release => same digest.
    assert handle.release(k=10).digest == result.digest


def test_release_audit_goes_through_global_auditor_when_enabled(schema3):
    from repro import obs

    table = Table(schema3, tuple(random_records(100, seed=3)))
    handle = api.open(table, base_k=5)
    handle.load(table)
    obs.AUDITOR.enable(reset=True)
    try:
        result = handle.release(k=5)
        assert obs.AUDITOR.latest is result.audit
        assert len(obs.AUDITOR.records) == 1
    finally:
        obs.AUDITOR.disable()


def test_release_composes_constraint_sequences(schema3):
    table = Table(schema3, tuple(random_records(200, seed=2)))
    handle = api.open(table, base_k=5)
    handle.load(table)
    seen: list[str] = []

    def first(records):
        seen.append("first")
        return len(records) < 40

    def second(records):
        seen.append("second")
        return True

    result = handle.release(k=5, constraints=[first, second])
    assert max(len(p) for p in result.table.partitions) < 40
    assert "first" in seen and "second" in seen


def test_load_rejects_workers_for_in_memory_sources(schema3):
    table = Table(schema3, tuple(random_records(50, seed=1)))
    handle = api.open(table, base_k=5)
    with pytest.raises(ValueError, match="file sources"):
        handle.load(table, workers=2)


def test_incremental_ops_round_trip(schema3):
    table = Table(schema3, tuple(random_records(100, seed=5)))
    handle = api.open(table, base_k=5)
    handle.load(table)
    extra = random_records(120, seed=5)[100:]
    handle.insert(extra[0])
    handle.insert_batch(extra[1:])
    removed = handle.delete(3, table.records[3].point)
    assert removed.rid == 3
    handle.update(7, table.records[7].point, Record(7, (1.0, 2.0, 3.0), ("flu",)))
    assert len(handle) == 119
    handle.engine.tree.check_invariants()


def test_durable_open_checkpoint_recover(tmp_path, schema3):
    table = Table(schema3, tuple(random_records(150, seed=6)))
    directory = tmp_path / "state"
    with api.open(
        schema3, base_k=5, durability=DurabilityConfig(directory)
    ) as handle:
        handle.load(table)
        digest = handle.release(k=5).digest
        checkpoint = handle.checkpoint()
        assert checkpoint.lsn == 151
        assert checkpoint.directory == directory

    recovered = api.recover(directory)
    assert recovered.recovery is not None
    assert recovered.recovery.snapshot_lsn == checkpoint.lsn
    assert recovered.release(k=5).digest == digest
    recovered.close()


def test_recover_propagates_corruption(tmp_path, schema3):
    directory = tmp_path / "state"
    with api.open(
        schema3, base_k=5, durability=DurabilityConfig(directory)
    ) as handle:
        handle.load(Table(schema3, tuple(random_records(60, seed=6))))
    data = bytearray((directory / "wal.log").read_bytes())
    data[30] ^= 0x20
    (directory / "wal.log").write_bytes(bytes(data))
    with pytest.raises(RecoveryError):
        api.recover(directory)


def test_checkpoint_without_durability_raises(schema3):
    handle = api.open(schema3, base_k=5)
    with pytest.raises(ValueError, match="no durability"):
        handle.checkpoint()


def test_facade_is_reexported_from_package_root():
    assert repro.api is api
    assert repro.ReleaseResult is api.ReleaseResult
    assert repro.Anonymizer is api.Anonymizer
    assert repro.DurabilityConfig is DurabilityConfig
    assert repro.RecoveryError is RecoveryError
