"""Checkpoint snapshots: serialization fidelity, atomicity, corruption."""

from __future__ import annotations

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.dataset.table import Table
from repro.durability.checkpoint import (
    read_snapshot,
    restore_schema,
    restore_tree,
    serialize_schema,
    serialize_tree,
    write_snapshot,
)
from repro.durability.errors import SnapshotCorruption
from tests.conftest import random_records


def built_anonymizer(schema3, count: int = 300) -> RTreeAnonymizer:
    table = Table(schema3, random_records(count, seed=4))
    anonymizer = RTreeAnonymizer(table, base_k=5)
    anonymizer.bulk_load(table)
    return anonymizer


def test_tree_round_trip_preserves_topology(schema3):
    anonymizer = built_anonymizer(schema3)
    tree = anonymizer.tree
    restored = restore_tree(serialize_tree(tree))
    restored.check_invariants()
    assert len(restored) == len(tree)
    assert restored.k == tree.k
    assert restored.leaf_capacity == tree.leaf_capacity
    assert restored.domain_extents == tree.domain_extents
    original_leaves = [
        sorted(r.rid for r in leaf.records) for leaf in tree.leaves()
    ]
    restored_leaves = [
        sorted(r.rid for r in leaf.records) for leaf in restored.leaves()
    ]
    assert restored_leaves == original_leaves


def test_restored_mbrs_are_recomputed_not_trusted(schema3):
    anonymizer = built_anonymizer(schema3)
    restored = restore_tree(serialize_tree(anonymizer.tree))
    for original, copy in zip(anonymizer.tree.leaves(), restored.leaves()):
        assert copy.mbr == original.mbr


def test_schema_round_trip(schema3):
    restored = restore_schema(serialize_schema(schema3))
    assert restored.dimensions == schema3.dimensions
    assert restored.sensitive == schema3.sensitive
    for original, copy in zip(
        schema3.quasi_identifiers, restored.quasi_identifiers
    ):
        assert copy.name == original.name
        assert copy.kind == original.kind
        assert copy.domain_low == original.domain_low
        assert copy.domain_high == original.domain_high


def test_snapshot_file_round_trip(tmp_path, schema3):
    anonymizer = built_anonymizer(schema3)
    path = tmp_path / "checkpoint.snap"
    write_snapshot(
        path,
        tree=anonymizer.tree,
        schema=schema3,
        lsn=123,
        watermarks={"audit_sequence": 7},
    )
    snapshot = read_snapshot(path)
    assert snapshot.lsn == 123
    assert snapshot.base_k == 5
    assert snapshot.watermarks == {"audit_sequence": 7}
    assert len(snapshot.tree) == len(anonymizer.tree)
    snapshot.tree.check_invariants()


def test_snapshot_write_is_atomic(tmp_path, schema3):
    anonymizer = built_anonymizer(schema3, count=100)
    path = tmp_path / "checkpoint.snap"
    write_snapshot(path, tree=anonymizer.tree, schema=schema3, lsn=1)
    write_snapshot(path, tree=anonymizer.tree, schema=schema3, lsn=2)
    assert read_snapshot(path).lsn == 2
    assert not list(tmp_path.glob("*.tmp"))


def test_missing_snapshot_raises(tmp_path):
    with pytest.raises(SnapshotCorruption, match="unreadable"):
        read_snapshot(tmp_path / "absent.snap")


def test_bit_flip_raises(tmp_path, schema3):
    anonymizer = built_anonymizer(schema3, count=100)
    path = tmp_path / "checkpoint.snap"
    write_snapshot(path, tree=anonymizer.tree, schema=schema3, lsn=1)
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x10
    path.write_bytes(bytes(data))
    with pytest.raises(SnapshotCorruption, match="CRC mismatch"):
        read_snapshot(path)


def test_truncation_raises(tmp_path, schema3):
    anonymizer = built_anonymizer(schema3, count=100)
    path = tmp_path / "checkpoint.snap"
    write_snapshot(path, tree=anonymizer.tree, schema=schema3, lsn=1)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(SnapshotCorruption, match="truncated"):
        read_snapshot(path)


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "checkpoint.snap"
    path.write_bytes(b"XXXX" + bytes(32))
    with pytest.raises(SnapshotCorruption, match="bad magic"):
        read_snapshot(path)


def test_count_mismatch_raises(tmp_path, schema3):
    anonymizer = built_anonymizer(schema3, count=100)
    doc = serialize_tree(anonymizer.tree)
    doc["count"] = 99
    with pytest.raises(ValueError, match="claims 99"):
        restore_tree(doc)


def test_empty_tree_round_trips(tmp_path, schema3):
    table = Table(schema3, ())
    anonymizer = RTreeAnonymizer(table, base_k=5)
    path = tmp_path / "checkpoint.snap"
    write_snapshot(path, tree=anonymizer.tree, schema=schema3, lsn=0)
    snapshot = read_snapshot(path)
    assert len(snapshot.tree) == 0
    assert snapshot.tree.root is None
