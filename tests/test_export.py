"""CSV publishing of anonymized releases and recipient-side parsing."""

from __future__ import annotations

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.dataset.census import make_census_table
from repro.dataset.export import (
    PARTITION_COLUMN,
    read_release_csv,
    release_rows,
    write_release_csv,
)
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.query.ranges import RangeQuery, count_anonymized
from repro.query.workload import random_range_workload
from tests.conftest import random_records


@pytest.fixture
def release(schema3):
    table = Table(schema3, random_records(300, seed=11))
    return RTreeAnonymizer.anonymize_table(table, k=10), table


class TestExport:
    def test_header_and_row_count(self, release, tmp_path) -> None:
        anonymized, table = release
        path = tmp_path / "release.csv"
        written = write_release_csv(anonymized, path)
        assert written == len(table)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith(f"{PARTITION_COLUMN},a,b,c,diagnosis")
        assert len(lines) == len(table) + 1

    def test_partition_members_share_generalization(self, release) -> None:
        anonymized, _table = release
        rows = list(release_rows(anonymized))[1:]
        by_partition: dict[str, set[tuple[str, ...]]] = {}
        for row in rows:
            by_partition.setdefault(row[0], set()).add(tuple(row[1:4]))
        # Indistinguishability in the published artifact itself.
        assert all(len(values) == 1 for values in by_partition.values())

    def test_sensitive_values_pass_through(self, release) -> None:
        anonymized, table = release
        rows = list(release_rows(anonymized))[1:]
        published = sorted(row[4] for row in rows)
        original = sorted(str(r.sensitive[0]) for r in table)
        assert published == original

    def test_round_trip_preserves_published_info(self, release, tmp_path) -> None:
        anonymized, table = release
        path = tmp_path / "release.csv"
        write_release_csv(anonymized, path)
        loaded = read_release_csv(path, table.schema)
        assert loaded.record_count == len(table)
        assert loaded.k_effective == anonymized.k_effective
        assert len(loaded.boxes) == len(anonymized.partitions)

    def test_recipient_count_queries_match(self, release, tmp_path) -> None:
        """A recipient's COUNT over the CSV equals ours over the release."""
        anonymized, table = release
        path = tmp_path / "release.csv"
        write_release_csv(anonymized, path)
        loaded = read_release_csv(path, table.schema)
        for query in random_range_workload(table, 30, seed=12):
            assert loaded.count_query(query.box) == count_anonymized(
                query, anonymized
            )

    def test_wrong_schema_rejected(self, release, tmp_path, schema3) -> None:
        from repro.dataset.schema import Attribute, Schema

        anonymized, _table = release
        path = tmp_path / "release.csv"
        write_release_csv(anonymized, path)
        other = Schema((Attribute.numeric("x", 0, 1),))
        with pytest.raises(ValueError):
            read_release_csv(path, other)

    def test_census_hierarchy_labels_round_trip(self, tmp_path) -> None:
        """Hierarchy-labelled categorical columns decode back to the code
        intervals they cover."""
        table = make_census_table(800, seed=9)
        anonymized = RTreeAnonymizer.anonymize_table(table, k=20)
        path = tmp_path / "census.csv"
        write_release_csv(anonymized, path)
        loaded = read_release_csv(path, table.schema)
        assert loaded.record_count == len(table)
        # Published boxes must contain the partitions they encode (the
        # label's code interval can only widen a degenerate code box).
        for published, partition in zip(loaded.boxes, anonymized.partitions):
            assert published.contains_box(partition.box) or published == partition.box
