"""The grid file and the grid-based anonymizer."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.grid import GridFileAnonymizer, gridfile_anonymize
from repro.core.compaction import compact_table
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.index.gridfile import GridFile
from repro.metrics.certainty import certainty_penalty
from repro.privacy.kanonymity import verify_release
from tests.conftest import random_records


def fresh_grid(capacity: int = 8) -> GridFile:
    return GridFile((0.0, 0.0, 0.0), (100.0, 100.0, 100.0), bucket_capacity=capacity)


class TestGridFile:
    def test_parameter_validation(self) -> None:
        with pytest.raises(ValueError):
            GridFile((0.0,), (1.0,), bucket_capacity=0)
        with pytest.raises(ValueError):
            GridFile((0.0,), (1.0, 2.0), bucket_capacity=4)

    def test_single_bucket_until_overflow(self) -> None:
        grid = fresh_grid(capacity=8)
        for record in random_records(8, seed=0):
            grid.insert(record)
        assert grid.bucket_count == 1
        assert grid.directory_cells == 1
        grid.check_invariants()

    def test_splits_on_overflow(self) -> None:
        grid = fresh_grid(capacity=8)
        for record in random_records(100, seed=1):
            grid.insert(record)
        grid.check_invariants()
        assert grid.bucket_count > 1
        assert all(len(b) <= 8 for b in grid.buckets())

    def test_wrong_dimensions_rejected(self) -> None:
        grid = fresh_grid()
        with pytest.raises(ValueError):
            grid.insert(Record(0, (1.0,)))

    def test_bucket_of_routes_correctly(self) -> None:
        grid = fresh_grid(capacity=4)
        records = random_records(60, seed=2)
        grid.insert_all(records)
        grid.check_invariants()
        for record in records[::7]:
            bucket = grid.bucket_of(record.point)
            assert any(r.rid == record.rid for r in bucket.records)

    def test_regions_disjoint_and_tile(self) -> None:
        grid = fresh_grid(capacity=6)
        grid.insert_all(random_records(150, seed=3))
        regions = [grid.bucket_region(b) for b in grid.buckets()]
        domain = Box((0.0,) * 3, (100.0,) * 3)
        assert all(domain.contains_box(region) for region in regions)
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                overlap = a.intersection(b)
                assert overlap is None or overlap.area() == 0.0
        assert sum(r.area() for r in regions) == pytest.approx(domain.area())

    def test_search_matches_linear_scan(self) -> None:
        grid = fresh_grid(capacity=6)
        records = random_records(300, seed=4)
        grid.insert_all(records)
        rng = random.Random(5)
        for _ in range(15):
            lows = tuple(float(rng.randint(0, 70)) for _ in range(3))
            highs = tuple(low + rng.randint(5, 30) for low in lows)
            box = Box(lows, highs)
            expected = sorted(r.rid for r in records if box.contains_point(r.point))
            assert sorted(r.rid for r in grid.search(box)) == expected

    def test_duplicate_points_capacity_relaxed(self) -> None:
        grid = fresh_grid(capacity=4)
        for rid in range(30):
            grid.insert(Record(rid, (5.0, 5.0, 5.0)))
        grid.check_invariants()
        # Unsplittable duplicates stay in one over-full bucket.
        assert grid.bucket_count == 1

    def test_directory_cap_stops_growth(self) -> None:
        grid = GridFile(
            (0.0, 0.0, 0.0),
            (100.0, 100.0, 100.0),
            bucket_capacity=4,
            max_directory_cells=8,
        )
        grid.insert_all(random_records(200, seed=6))
        grid.check_invariants()
        assert grid.directory_cells <= 8

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)),
            min_size=1,
            max_size=150,
        )
    )
    def test_insert_property(self, points) -> None:
        grid = GridFile((0.0, 0.0), (50.0, 50.0), bucket_capacity=5)
        for rid, point in enumerate(points):
            grid.insert(Record(rid, (float(point[0]), float(point[1]))))
        grid.check_invariants()
        assert len(grid) == len(points)


class TestGridAnonymizer:
    @pytest.fixture
    def table3(self, schema3) -> Table:
        return Table(schema3, random_records(600, seed=7))

    def test_release_passes_audit(self, table3) -> None:
        for k in (5, 10):
            release = gridfile_anonymize(table3, k)
            assert verify_release(release, table3, k) == []

    def test_compaction_retrofit_helps(self) -> None:
        """The §4 retrofit claim on a second index family: compacting the
        grid release slashes its certainty penalty.

        Clustered data (Lands End-like zipcodes) is where region-published
        partitions leave real gaps; uniform data would show only a mild
        gain, which is itself the paper's point about data distributions.
        """
        from repro.dataset.landsend import make_landsend_table

        full = make_landsend_table(800, seed=3)
        schema = Schema(
            (
                Attribute.numeric("zipcode", 501, 99_950),
                Attribute.numeric("price", 1, 500),
                Attribute.numeric("cost", 1, 6_000),
            )
        )
        table = Table.from_points(
            schema,
            [(r.point[0], r.point[4], r.point[6]) for r in full],
        )
        release = gridfile_anonymize(table, 10)
        compacted = compact_table(release)
        assert certainty_penalty(compacted, table) < 0.7 * certainty_penalty(
            release, table
        )

    def test_parameter_validation(self, table3, schema3) -> None:
        with pytest.raises(ValueError):
            GridFileAnonymizer(Table(schema3))
        with pytest.raises(ValueError):
            GridFileAnonymizer(table3, capacity_factor=1)
        with pytest.raises(ValueError):
            gridfile_anonymize(table3, 0)
        with pytest.raises(ValueError):
            gridfile_anonymize(table3, len(table3) + 1)
