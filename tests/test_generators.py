"""The Lands End and Agrawal workload generators."""

from __future__ import annotations

import numpy as np

from repro.dataset.agrawal import AGRAWAL_ATTRIBUTES, AgrawalGenerator, make_agrawal_table
from repro.dataset.io import RecordFileReader
from repro.dataset.landsend import (
    LANDSEND_ATTRIBUTES,
    LandsEndGenerator,
    make_landsend_table,
)


class TestLandsEnd:
    def test_schema_matches_paper(self) -> None:
        generator = LandsEndGenerator()
        assert generator.schema.names() == LANDSEND_ATTRIBUTES
        assert generator.schema.dimensions == 8

    def test_determinism(self) -> None:
        a = LandsEndGenerator(seed=4).generate_points(100)
        b = LandsEndGenerator(seed=4).generate_points(100)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self) -> None:
        a = LandsEndGenerator(seed=4).generate_points(100)
        b = LandsEndGenerator(seed=5).generate_points(100)
        assert not np.array_equal(a, b)

    def test_stream_offsets_are_disjoint_slices(self) -> None:
        generator = LandsEndGenerator(seed=4)
        a = generator.generate_points(100, stream_offset=0)
        b = generator.generate_points(100, stream_offset=1)
        assert not np.array_equal(a, b)
        # Re-requesting an offset reproduces it exactly (the incremental
        # benches rely on this).
        assert np.array_equal(b, generator.generate_points(100, stream_offset=1))

    def test_values_within_domains(self) -> None:
        generator = LandsEndGenerator(seed=1)
        points = generator.generate_points(5_000)
        for dimension, attribute in enumerate(generator.schema.quasi_identifiers):
            column = points[:, dimension]
            assert column.min() >= attribute.domain_low
            assert column.max() <= attribute.domain_high

    def test_price_cost_correlated(self) -> None:
        points = LandsEndGenerator(seed=1).generate_points(5_000)
        price = points[:, 4].astype(float)
        cost = points[:, 6].astype(float)
        correlation = np.corrcoef(price, cost)[0, 1]
        assert correlation > 0.5  # cost derives from price x quantity

    def test_zipcodes_are_clustered(self) -> None:
        # Clustered zipcodes: the most popular 1000-wide band holds far
        # more than the uniform share of the records.
        points = LandsEndGenerator(seed=1).generate_points(5_000)
        zipcodes = points[:, 0]
        bins = np.bincount(zipcodes // 1000, minlength=100)
        uniform_share = len(zipcodes) / 100
        assert bins.max() > 4 * uniform_share

    def test_generate_table_rids(self) -> None:
        table = LandsEndGenerator(seed=2).generate(10, first_rid=50)
        assert [record.rid for record in table] == list(range(50, 60))

    def test_make_landsend_table(self) -> None:
        table = make_landsend_table(25, seed=0)
        assert len(table) == 25


class TestAgrawal:
    def test_schema_matches_paper(self) -> None:
        generator = AgrawalGenerator()
        assert generator.schema.names() == AGRAWAL_ATTRIBUTES
        assert generator.schema.dimensions == 9

    def test_commission_dependency(self) -> None:
        """The generator's signature rule: salary >= 75k -> commission = 0."""
        points = AgrawalGenerator(seed=1).generate_points(5_000)
        salary, commission = points[:, 0], points[:, 1]
        assert (commission[salary >= 75_000] == 0).all()
        low_paid = commission[salary < 75_000]
        assert (low_paid >= 10_000).all() and (low_paid <= 75_000).all()

    def test_hvalue_depends_on_zipcode(self) -> None:
        points = AgrawalGenerator(seed=1).generate_points(5_000)
        zipcode, hvalue = points[:, 5], points[:, 6]
        for z in range(9):
            values = hvalue[zipcode == z]
            if len(values) == 0:
                continue
            assert values.min() >= 0.5 * 100_000 * (z + 1) - 1
            assert values.max() <= 1.5 * 100_000 * (z + 1)

    def test_determinism(self) -> None:
        a = AgrawalGenerator(seed=3).generate_points(200)
        b = AgrawalGenerator(seed=3).generate_points(200)
        assert np.array_equal(a, b)

    def test_write_file_streams_exact_count(self, tmp_path) -> None:
        path = tmp_path / "agrawal.rec"
        written = AgrawalGenerator(seed=2).write_file(path, 1_000, batch_size=300)
        assert written == 1_000
        reader = RecordFileReader(path)
        assert len(reader) == 1_000
        assert reader.record_bytes == 36  # the paper's 36-byte records

    def test_make_agrawal_table(self) -> None:
        table = make_agrawal_table(25, seed=0)
        assert len(table) == 25
        assert table.schema.dimensions == 9
