"""Property tests for the columnar kernels against their scalar oracles.

Every kernel in :mod:`repro.kernels` claims *bit-identity* with a scalar
code path that predates it.  This suite makes that claim falsifiable:
hypothesis drives each kernel and its oracle over the same inputs and the
assertions demand exact equality — floats compare with ``==`` (and
``repr`` where the sign of zero matters), byte strings byte-for-byte, and
keys as Python integers, never through a tolerance.

The one *defined* divergence — signed-zero fold direction in the MBR
kernels — is pinned down by an explicit edge test instead of being
papered over, so a change in numpy's tie-breaking would fail loudly here
rather than silently shift release digests.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.record import Record
from repro.geometry.box import Box, union_all
from repro.index.hilbert import hilbert_key, quantize
from repro.index.split import (
    MidpointSplitPolicy,
    candidate_thresholds,
    candidate_thresholds_scalar,
)
from repro.kernels import (
    RecordBatch,
    kernels_enabled,
    scoped_kernels,
    set_kernels_enabled,
)
from repro.kernels.boxes import (
    array_to_boxes,
    boxes_to_array,
    group_mbrs,
    intersect_masks,
    intersections,
    margins,
    mbr_of_points,
    union_all_boxes,
    union_arrays,
    volumes,
)
from repro.kernels.codec import decode_points, encode_points, points_to_tuples
from repro.kernels.hilbert import (
    hilbert_keys,
    hilbert_keys_for_points,
    quantize_batch,
)
from repro.kernels.split import best_threshold_batch, candidate_thresholds_batch

# -- strategies ---------------------------------------------------------------

#: Clean finite floats: no NaN/inf and no -0.0, so float equality is exact
#: and the signed-zero fold caveat (tested separately) cannot trigger.
finite = st.floats(
    allow_nan=False, allow_infinity=False, width=32
).map(lambda value: value + 0.0)

#: Integer-coded coordinates — what record files actually hold.
coded = st.integers(-1000, 1000).map(float)


def point_arrays(coords=coded, min_rows=1, max_rows=40, max_dims=5):
    """(N, dims) float64 arrays with every row the same width."""
    return st.integers(1, max_dims).flatmap(
        lambda dims: st.lists(
            st.lists(coords, min_size=dims, max_size=dims),
            min_size=min_rows,
            max_size=max_rows,
        ).map(lambda rows: np.array(rows, dtype=np.float64))
    )


def cell_arrays(bits: int, max_dims: int = 9):
    top = (1 << bits) - 1
    return st.integers(1, max_dims).flatmap(
        lambda dims: st.lists(
            st.lists(st.integers(0, top), min_size=dims, max_size=dims),
            min_size=1,
            max_size=30,
        ).map(lambda rows: np.array(rows, dtype=np.uint64))
    )


# -- Hilbert keying -----------------------------------------------------------


class TestHilbertKeys:
    @given(st.integers(1, 10).flatmap(lambda b: st.tuples(st.just(b), cell_arrays(b))))
    def test_batch_keys_equal_scalar_keys(self, case) -> None:
        bits, cells = case
        keys = hilbert_keys(cells, bits).tolist()
        expected = [hilbert_key(row, bits) for row in cells.tolist()]
        assert keys == expected

    def test_wide_keys_exceed_64_bits_exactly(self) -> None:
        # census/agrawal shape: 9 dims x 10 bits = 90-bit keys.  The object
        # path must deliver the full integer, not the key modulo 2**64.
        rng = np.random.default_rng(3)
        cells = rng.integers(0, 1 << 10, size=(64, 9), dtype=np.uint64)
        keys = hilbert_keys(cells, 10)
        assert keys.dtype == object
        expected = [hilbert_key(row, 10) for row in cells.tolist()]
        assert keys.tolist() == expected
        assert any(key >> 64 for key in expected)  # the grid really is wide

    def test_narrow_keys_stay_uint64(self) -> None:
        cells = np.array([[1, 2], [3, 0]], dtype=np.uint64)
        assert hilbert_keys(cells, 4).dtype == np.uint64

    @pytest.mark.parametrize(("dims", "bits"), [(2, 3), (3, 2)])
    def test_full_grid_is_a_bijection_with_adjacent_steps(
        self, dims: int, bits: int
    ) -> None:
        """Over the whole grid the keys are a permutation of the key space
        and walking them in order moves one unit along one axis — the two
        structural facts that make Hilbert sorting a locality-preserving
        loader."""
        side = 1 << bits
        cells = np.array(
            [
                [(index >> (bits * d)) & (side - 1) for d in range(dims)]
                for index in range(side**dims)
            ],
            dtype=np.uint64,
        )
        keys = hilbert_keys(cells, bits).tolist()
        assert sorted(keys) == list(range(side**dims))
        walk = [row for _, row in sorted(zip(keys, cells.tolist()))]
        for here, there in zip(walk, walk[1:]):
            assert sum(abs(a - b) for a, b in zip(here, there)) == 1

    def test_dims_one_returns_cells(self) -> None:
        cells = np.array([[5], [0], [7]], dtype=np.uint64)
        assert hilbert_keys(cells, 3).tolist() == [5, 0, 7]

    def test_empty_batch(self) -> None:
        assert hilbert_keys(np.empty((0, 3), dtype=np.uint64), 4).tolist() == []

    def test_rejects_oversized_cells(self) -> None:
        with pytest.raises(ValueError, match="does not fit in 2 bits"):
            hilbert_keys(np.array([[4, 0]], dtype=np.uint64), 2)

    def test_rejects_wrong_rank(self) -> None:
        with pytest.raises(ValueError, match="must be"):
            hilbert_keys(np.array([1, 2, 3], dtype=np.uint64), 4)
        with pytest.raises(ValueError, match="at least one coordinate"):
            hilbert_keys(np.empty((2, 0), dtype=np.uint64), 4)


class TestQuantize:
    @given(
        point_arrays(coords=st.integers(-50, 150).map(float), max_dims=4),
        st.integers(1, 10),
    )
    def test_batch_quantize_equals_scalar(self, points, bits: int) -> None:
        dims = points.shape[1]
        lows = [0.0] * dims
        highs = [100.0] * dims
        cells = quantize_batch(points, lows, highs, bits)
        expected = [quantize(row, lows, highs, bits) for row in points.tolist()]
        assert cells.tolist() == expected

    @given(point_arrays(coords=finite, max_dims=3))
    def test_degenerate_and_inverted_extents_quantize_to_zero(self, points) -> None:
        dims = points.shape[1]
        lows = [10.0] * dims
        highs = [10.0] * dims  # extent 0 -> cell 0, as in the scalar path
        assert quantize_batch(points, lows, highs, 8).tolist() == [
            quantize(row, lows, highs, 8) for row in points.tolist()
        ]
        highs = [5.0] * dims  # negative extent is also "not positive"
        assert quantize_batch(points, lows, highs, 8).tolist() == [
            quantize(row, lows, highs, 8) for row in points.tolist()
        ]

    def test_rejects_non_finite(self) -> None:
        with pytest.raises(ValueError, match="non-finite"):
            quantize_batch(
                np.array([[np.nan, 0.0]]), [0.0, 0.0], [1.0, 1.0], 4
            )

    @given(point_arrays(coords=coded, max_dims=4), st.integers(1, 10))
    def test_fused_keys_equal_scalar_composition(self, points, bits: int) -> None:
        dims = points.shape[1]
        lows = [-1000.0] * dims
        highs = [1000.0] * dims
        keys = hilbert_keys_for_points(points, lows, highs, bits).tolist()
        assert keys == [
            hilbert_key(quantize(row, lows, highs, bits), bits)
            for row in points.tolist()
        ]


# -- MBR arithmetic -----------------------------------------------------------


def _boxes_from(array: np.ndarray) -> list[Box]:
    dims = array.shape[1] // 2
    return [
        Box(
            tuple(min(a, b) for a, b in zip(row[:dims], row[dims:])),
            tuple(max(a, b) for a, b in zip(row[:dims], row[dims:])),
        )
        for row in array.tolist()
    ]


class TestBoxKernels:
    @given(point_arrays(coords=finite))
    def test_mbr_of_points_equals_box_from_points(self, points) -> None:
        kernel = mbr_of_points(points)
        oracle = Box.from_points(points.tolist())
        assert repr(kernel) == repr(oracle)  # repr catches a -0.0 drift

    def test_mbr_rejects_empty_with_scalar_message(self) -> None:
        with pytest.raises(ValueError, match="empty collection of points"):
            mbr_of_points(np.empty((0, 2)))
        with pytest.raises(ValueError, match="empty collection of points"):
            Box.from_points([])

    def test_signed_zero_fold_direction_is_the_defined_divergence(self) -> None:
        """The one documented gap: numpy's min/max keep the *last* zero on a
        ties-only axis while the scalar fold keeps the *first*.  Values are
        equal (0.0 == -0.0); only the sign bit differs — impossible on the
        integer-coded data releases are built from, and pinned here so a
        numpy behavior change surfaces as a test failure."""
        points = np.array([[0.0], [-0.0]])
        kernel = mbr_of_points(points)
        oracle = Box.from_points(points.tolist())
        assert kernel == oracle  # dataclass equality: -0.0 == 0.0
        assert repr(oracle.lows) == "(0.0,)"  # scalar keeps the first zero
        assert repr(kernel.lows) == "(-0.0,)"  # kernel keeps the last zero

    @given(
        point_arrays(coords=finite, min_rows=1, max_rows=30),
        st.lists(st.integers(1, 29), max_size=6),
    )
    def test_group_mbrs_equal_per_group_folds(self, points, cuts) -> None:
        total = points.shape[0]
        starts = sorted({0, *(cut for cut in cuts if cut < total)})
        bounds = starts + [total]
        kernel = group_mbrs(points, starts)
        oracle = [
            Box.from_points(points[left:right].tolist())
            for left, right in zip(bounds, bounds[1:])
        ]
        assert [repr(box) for box in kernel] == [repr(box) for box in oracle]

    def test_group_mbrs_validates_offsets(self) -> None:
        points = np.zeros((4, 2))
        assert group_mbrs(points, []) == []
        with pytest.raises(ValueError, match="begin at 0"):
            group_mbrs(points, [1])
        with pytest.raises(ValueError, match="empty collection"):
            group_mbrs(points, [0, 2, 2])
        with pytest.raises(ValueError, match="empty collection"):
            group_mbrs(points, [0, 4])  # trailing group is empty

    @given(point_arrays(coords=finite, min_rows=1, max_rows=20, max_dims=3))
    def test_union_volumes_margins_equal_box_methods(self, points) -> None:
        dims = points.shape[1]
        array = np.concatenate([points, points + np.abs(points)], axis=1)
        boxes = _boxes_from(array)
        packed = boxes_to_array(boxes)
        assert repr(union_all_boxes(boxes)) == repr(union_all(boxes))
        unioned = union_arrays(packed)
        assert unioned.tolist() == list(
            union_all(boxes).lows + union_all(boxes).highs
        )
        assert volumes(packed).tolist() == [box.area() for box in boxes]
        assert margins(packed).tolist() == [box.margin() for box in boxes]
        assert array_to_boxes(packed) == boxes
        assert dims == boxes[0].dimensions

    def test_union_rejects_empty_with_scalar_message(self) -> None:
        with pytest.raises(ValueError, match="empty collection of boxes"):
            boxes_to_array([])
        with pytest.raises(ValueError, match="empty collection of boxes"):
            union_arrays(np.empty((0, 4)))

    def test_dims_one_degenerate_boxes(self) -> None:
        # A single zero-width extent: area 0, margin 0, intersection = self.
        box = Box((3.0,), (3.0,))
        packed = boxes_to_array([box])
        assert volumes(packed).tolist() == [box.area()] == [0.0]
        assert margins(packed).tolist() == [box.margin()] == [0.0]
        assert intersections(packed, box) == [box.intersection(box)] == [box]

    @given(
        point_arrays(coords=coded, min_rows=1, max_rows=20, max_dims=3),
        st.lists(coded, min_size=6, max_size=6),
    )
    def test_intersections_equal_box_methods(self, points, probe_coords) -> None:
        dims = points.shape[1]
        array = np.concatenate([points, points + np.abs(points)], axis=1)
        boxes = _boxes_from(array)
        packed = boxes_to_array(boxes)
        probe = Box(
            tuple(
                min(a, b)
                for a, b in zip(probe_coords[:dims], probe_coords[dims : 2 * dims])
            ),
            tuple(
                max(a, b)
                for a, b in zip(probe_coords[:dims], probe_coords[dims : 2 * dims])
            ),
        )
        assert intersect_masks(packed, probe).tolist() == [
            box.intersects(probe) for box in boxes
        ]
        assert intersections(packed, probe) == [
            box.intersection(probe) for box in boxes
        ]


# -- record codec -------------------------------------------------------------


class TestCodec:
    @given(point_arrays(coords=st.integers(-(2**31), 2**31 - 1).map(float)))
    def test_encode_matches_struct_pack_stream(self, points) -> None:
        dims = points.shape[1]
        packer = struct.Struct(f"<{dims}i")
        expected = b"".join(
            packer.pack(*(int(round(value)) for value in row))
            for row in points.tolist()
        )
        assert encode_points(points) == expected

    @given(point_arrays(coords=st.integers(-(2**31), 2**31 - 1).map(float)))
    def test_decode_matches_struct_iter_unpack(self, points) -> None:
        dims = points.shape[1]
        chunk = encode_points(points)
        packer = struct.Struct(f"<{dims}i")
        expected = [
            tuple(float(value) for value in values)
            for values in packer.iter_unpack(chunk)
        ]
        decoded = decode_points(chunk, dims)
        assert points_to_tuples(decoded) == expected
        assert decoded.tolist() == points.tolist()  # int32 -> float64 is exact

    def test_int32_boundaries_round_trip(self) -> None:
        edge = np.array(
            [[-(2**31), 2**31 - 1], [0.0, -1.0]], dtype=np.float64
        )
        assert decode_points(encode_points(edge), 2).tolist() == edge.tolist()

    def test_out_of_range_refused_not_wrapped(self) -> None:
        with pytest.raises(ValueError, match="int32"):
            encode_points(np.array([[2.0**31]]))
        with pytest.raises(ValueError, match="int32"):
            encode_points(np.array([[-(2.0**31) - 1.0]]))
        with pytest.raises(struct.error):  # the scalar refusal it mirrors
            struct.Struct("<i").pack(2**31)

    @given(st.lists(st.integers(-8, 8), min_size=1, max_size=12))
    def test_half_to_even_rounding_matches_python_round(self, halves) -> None:
        values = np.array([[h / 2.0 for h in halves]])
        expected = struct.Struct(f"<{len(halves)}i").pack(
            *(int(round(h / 2.0)) for h in halves)
        )
        assert encode_points(values) == expected

    def test_zero_record_pages(self) -> None:
        assert encode_points(np.empty((0, 3))) == b""
        assert decode_points(b"", 3).shape == (0, 3)

    def test_torn_page_rejected(self) -> None:
        with pytest.raises(ValueError, match="whole number"):
            decode_points(b"\x00" * 10, 3)

    def test_rejects_non_finite(self) -> None:
        with pytest.raises(ValueError, match="non-finite"):
            encode_points(np.array([[np.inf]]))


# -- split thresholds ---------------------------------------------------------


#: Tie-heavy value lists: a tiny alphabet forces duplicate runs, the case
#: the run-boundary arithmetic must get exactly right.
tie_heavy = st.lists(st.integers(0, 6).map(float), min_size=0, max_size=40)


class TestThresholdKernel:
    @given(tie_heavy, st.integers(1, 6))
    def test_batch_equals_scalar_sweep(self, values, min_count: int) -> None:
        assert candidate_thresholds_batch(values, min_count) == (
            candidate_thresholds_scalar(values, min_count)
        )

    @given(st.lists(finite, min_size=0, max_size=40), st.integers(1, 6))
    def test_batch_equals_scalar_sweep_on_floats(self, values, min_count) -> None:
        assert candidate_thresholds_batch(values, min_count) == (
            candidate_thresholds_scalar(values, min_count)
        )

    def test_empty_single_and_uniform_inputs(self) -> None:
        assert candidate_thresholds_batch([], 1) == []
        assert candidate_thresholds_batch([3.0], 1) == []
        assert candidate_thresholds_batch([7.0] * 10, 1) == []
        assert best_threshold_batch([5.0, 5.0], 1) is None

    def test_dispatch_agrees_across_the_flag(self) -> None:
        values = [1.0, 1.0, 2.0, 3.0, 50.0, 51.0]
        assert candidate_thresholds(values, 1, use_kernels=True) == (
            candidate_thresholds(values, 1, use_kernels=False)
        )


class TestMidpointEmptyGuard:
    def test_empty_records_return_none_not_crash(self) -> None:
        # Regression (found writing the kernels): max() over no extents.
        assert MidpointSplitPolicy().choose_split([], 2, (10.0, 10.0)) is None

    def test_undersized_groups_return_none(self) -> None:
        records = [Record(0, (1.0, 2.0)), Record(1, (3.0, 4.0))]
        assert MidpointSplitPolicy().choose_split(records, 2, (10.0, 10.0)) is None


# -- RecordBatch --------------------------------------------------------------


class TestRecordBatch:
    @given(point_arrays(coords=coded, min_rows=0, max_rows=20))
    def test_record_round_trip(self, points) -> None:
        records = [
            Record(rid, tuple(row)) for rid, row in enumerate(points.tolist())
        ]
        batch = RecordBatch.from_records(records)
        assert len(batch) == len(records)
        assert batch.to_records() == records
        assert list(batch.iter_records()) == records

    def test_empty_batch_shape(self) -> None:
        batch = RecordBatch.from_records([])
        assert len(batch) == 0
        assert batch.points.shape == (0, 0)
        assert batch.to_records() == []

    def test_from_points_assigns_file_position_rids(self) -> None:
        batch = RecordBatch.from_points(np.zeros((3, 2)), first_rid=10)
        assert batch.rids.tolist() == [10, 11, 12]

    def test_mbr_and_keys_route_through_the_kernels(self) -> None:
        points = np.array([[1.0, 8.0], [5.0, 2.0]])
        batch = RecordBatch.from_points(points)
        assert batch.mbr() == Box((1.0, 2.0), (5.0, 8.0))
        lows, highs = (0.0, 0.0), (10.0, 10.0)
        assert batch.hilbert_keys(lows, highs, 4).tolist() == [
            hilbert_key(quantize(row, lows, highs, 4), 4)
            for row in points.tolist()
        ]

    def test_mismatched_rids_rejected(self) -> None:
        with pytest.raises(ValueError, match="rids for"):
            RecordBatch(np.zeros((3, 2)), np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError, match="must be"):
            RecordBatch(np.zeros(3), np.zeros(3, dtype=np.int64))


# -- the enablement flag ------------------------------------------------------


class TestKernelFlag:
    def test_override_beats_process_default(self) -> None:
        assert kernels_enabled(True) is True
        assert kernels_enabled(False) is False

    def test_scoped_toggle_restores(self) -> None:
        before = kernels_enabled()
        with scoped_kernels(not before):
            assert kernels_enabled() is (not before)
            with scoped_kernels(before):
                assert kernels_enabled() is before
            assert kernels_enabled() is (not before)
        assert kernels_enabled() is before

    def test_set_kernels_enabled_returns_previous(self) -> None:
        before = set_kernels_enabled(False)
        try:
            assert kernels_enabled() is False
        finally:
            set_kernels_enabled(before)
        assert kernels_enabled() is before
