"""Partitions and anonymized tables."""

from __future__ import annotations

import pytest

from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.geometry.box import Box


def make_partition(points: list[tuple[float, float]], box: Box | None = None) -> Partition:
    records = tuple(Record(i, p) for i, p in enumerate(points))
    if box is None:
        box = Box.from_points(points)
    return Partition(records, box)


@pytest.fixture
def schema2() -> Schema:
    return Schema((Attribute.numeric("x", 0, 10), Attribute.numeric("y", 0, 10)))


class TestPartition:
    def test_box_must_contain_records(self) -> None:
        records = (Record(0, (5.0, 5.0)),)
        with pytest.raises(ValueError):
            Partition(records, Box((0.0, 0.0), (1.0, 1.0)))

    def test_empty_rejected(self) -> None:
        with pytest.raises(ValueError):
            Partition((), Box((0.0,), (1.0,)))

    def test_mbr_shrink_wraps(self) -> None:
        partition = make_partition(
            [(1.0, 8.0), (3.0, 2.0)], Box((0.0, 0.0), (10.0, 10.0))
        )
        assert partition.mbr() == Box((1.0, 2.0), (3.0, 8.0))

    def test_with_box(self) -> None:
        partition = make_partition([(1.0, 1.0)], Box((0.0, 0.0), (5.0, 5.0)))
        tightened = partition.with_box(partition.mbr())
        assert tightened.records == partition.records
        assert tightened.box == Box((1.0, 1.0), (1.0, 1.0))

    def test_rids(self) -> None:
        assert make_partition([(1.0, 1.0), (2.0, 2.0)]).rids() == frozenset({0, 1})

    def test_len(self) -> None:
        assert len(make_partition([(1.0, 1.0), (2.0, 2.0)])) == 2


class TestAnonymizedTable:
    def make_table(self, schema2: Schema) -> AnonymizedTable:
        a = Partition(
            (Record(0, (1.0, 1.0), ("flu",)), Record(1, (2.0, 2.0), ("cold",))),
            Box((1.0, 1.0), (2.0, 2.0)),
        )
        b = Partition(
            (Record(2, (8.0, 8.0), ("flu",)), Record(3, (9.0, 9.0), ("acl",)),
             Record(4, (8.5, 8.5), ("flu",))),
            Box((8.0, 8.0), (9.0, 9.0)),
        )
        return AnonymizedTable(schema2, [a, b])

    def test_counts(self, schema2: Schema) -> None:
        table = self.make_table(schema2)
        assert len(table) == 2  # partitions
        assert table.record_count == 5
        assert table.k_effective == 2

    def test_empty_rejected(self, schema2: Schema) -> None:
        with pytest.raises(ValueError):
            AnonymizedTable(schema2, [])

    def test_dimension_mismatch_rejected(self, schema2: Schema) -> None:
        bad = Partition((Record(0, (1.0,)),), Box((0.0,), (2.0,)))
        with pytest.raises(ValueError):
            AnonymizedTable(schema2, [bad])

    def test_partition_of(self, schema2: Schema) -> None:
        table = self.make_table(schema2)
        assert len(table.partition_of(3)) == 3
        with pytest.raises(KeyError):
            table.partition_of(99)

    def test_rid_to_partition(self, schema2: Schema) -> None:
        mapping = self.make_table(schema2).rid_to_partition()
        assert mapping == {0: 0, 1: 0, 2: 1, 3: 1, 4: 1}

    def test_rows_release_format(self, schema2: Schema) -> None:
        rows = list(self.make_table(schema2).rows())
        assert len(rows) == 5
        box, sensitive = rows[0]
        assert box == Box((1.0, 1.0), (2.0, 2.0))
        assert sensitive == ("flu",)
        # All rows of one partition publish the same box.
        assert rows[0][0] == rows[1][0]

    def test_summary_mentions_k(self, schema2: Schema) -> None:
        summary = self.make_table(schema2).summary()
        assert "k-effective 2" in summary
        assert "2 partitions" in summary
