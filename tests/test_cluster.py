"""Unit tests for the sharded serving cluster (repro.cluster).

Covers the wire framing, the uniform shard planner, the ServiceProtocol
surface, key routing (including cross-shard updates), configuration
validation through ``repro.api``, fault surfacing when a shard worker is
killed, and the shard-labeled metrics exposition.
"""

from __future__ import annotations

import os
import signal
import socket
import time

import pytest

from repro import api
from repro.cluster import (
    ClusterConfig,
    EndOfStream,
    FrameError,
    ShardedCluster,
    recv_frame,
    send_frame,
)
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.index.bulk import DEFAULT_HILBERT_BITS
from repro.obs.live import parse_prometheus_text, prometheus_cluster_text
from repro.obs.render import render_live
from repro.parallel.planner import plan_uniform
from repro.serve import (
    AnonymizerService,
    ServiceClosedError,
    ServiceConfig,
    ServiceProtocol,
)

from .conftest import random_records


# -- wire protocol -----------------------------------------------------------


def test_frame_roundtrip() -> None:
    left, right = socket.socketpair()
    try:
        payload = (7, "insert_batch", ((1, (2.0, 3.0)),))
        send_frame(left, payload)
        assert recv_frame(right) == payload
    finally:
        left.close()
        right.close()


def test_recv_frame_end_of_stream_on_closed_peer() -> None:
    left, right = socket.socketpair()
    left.close()
    try:
        with pytest.raises(EndOfStream):
            recv_frame(right)
    finally:
        right.close()


def test_recv_frame_rejects_corrupt_length() -> None:
    left, right = socket.socketpair()
    try:
        left.sendall(b"\xff\xff\xff\xff")  # claims a 4 GiB frame
        with pytest.raises(FrameError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


# -- planner -----------------------------------------------------------------


def test_plan_uniform_covers_key_space_evenly() -> None:
    lows, highs = (0.0, 0.0), (100.0, 100.0)
    plan = plan_uniform(4, lows, highs, DEFAULT_HILBERT_BITS)
    assert len(plan.boundaries) == 3
    total = 1 << (DEFAULT_HILBERT_BITS * 2)
    assert plan.boundaries == (total // 4, total // 2, 3 * total // 4)
    assert plan.shard_of(0) == 0
    assert plan.shard_of(total - 1) == 3


def test_plan_uniform_single_shard_and_validation() -> None:
    plan = plan_uniform(1, (0.0,), (1.0,), 4)
    assert plan.boundaries == ()
    with pytest.raises(ValueError):
        plan_uniform(0, (0.0,), (1.0,), 4)


# -- configuration -----------------------------------------------------------


def test_cluster_config_validation() -> None:
    with pytest.raises(ValueError):
        ClusterConfig(shards=0)
    with pytest.raises(ValueError):
        ClusterConfig(request_timeout=0.0)
    with pytest.raises(ValueError):
        ClusterConfig(max_pending=0)


def test_configs_are_keyword_only() -> None:
    with pytest.raises(TypeError):
        ClusterConfig(2)  # type: ignore[misc]
    with pytest.raises(TypeError):
        ServiceConfig(1024)  # type: ignore[misc]


def test_api_open_rejects_engine_knobs_for_cluster(schema3) -> None:
    with pytest.raises(ValueError, match="serve=True"):
        api.open(schema3, shards=2)
    with pytest.raises(ValueError, match="disagrees"):
        api.serve(schema3, shards=3, cluster_config=ClusterConfig(shards=2))
    with pytest.raises(ValueError, match="leaf_capacity"):
        api.serve(schema3, shards=2, leaf_capacity=8)
    with pytest.raises(ValueError, match="cluster_config.service"):
        api.serve(
            schema3,
            shards=2,
            service_config=ServiceConfig(),
            cluster_config=ClusterConfig(shards=2),
        )


# -- protocol surface --------------------------------------------------------


def test_both_backends_satisfy_service_protocol(schema3) -> None:
    service = api.serve(schema3)
    cluster = api.serve(schema3, shards=2)
    try:
        assert isinstance(service, AnonymizerService)
        assert isinstance(cluster, ShardedCluster)
        assert isinstance(service, ServiceProtocol)
        assert isinstance(cluster, ServiceProtocol)
    finally:
        service.close()
        cluster.close()


# -- routing and serving -----------------------------------------------------


def test_cluster_routes_serves_and_aggregates(schema3) -> None:
    records = random_records(360, seed=11)
    table = Table(schema3, records)
    with ShardedCluster(table, ClusterConfig(shards=3)) as cluster:
        assert cluster.shard_count == 3
        assert cluster.insert_batch(table) == len(records)
        assert len(cluster) == len(records)
        # Every record is owned by the shard its key falls in.
        owners = {cluster.shard_of(record.point) for record in records}
        assert owners == {0, 1, 2}
        epoch_before = cluster.epoch
        snapshot = cluster.release(5)
        assert snapshot.k_satisfied
        assert snapshot.epoch == epoch_before
        assert cluster.release(5) is snapshot  # cached, epoch unchanged
        removed = cluster.delete(records[0].rid, records[0].point)
        assert removed.rid == records[0].rid
        assert cluster.epoch > epoch_before
        fresh = cluster.release(5)
        assert fresh is not snapshot
        assert fresh.digest != snapshot.digest
        health = cluster.health()
        assert health["status"] == "healthy"
        assert health["shard_count"] == 3
        assert len(health["shards"]) == 3


def test_cross_shard_update_moves_record(schema3) -> None:
    records = random_records(240, seed=13)
    table = Table(schema3, records)
    with ShardedCluster(table, ClusterConfig(shards=2)) as cluster:
        cluster.insert_batch(table)
        moved = None
        for record in records:
            target = Record(record.rid, (100.0, 100.0, 100.0), record.sensitive)
            if cluster.shard_of(record.point) != cluster.shard_of(target.point):
                moved = (record, target)
                break
        assert moved is not None, "no cross-shard pair in the sample"
        old_record, new_record = moved
        replaced = cluster.update(old_record.rid, old_record.point, new_record)
        assert replaced.rid == old_record.rid
        assert len(cluster) == len(records)
        assert cluster.release(5).k_satisfied


def test_cluster_release_validates_arguments(schema3) -> None:
    table = Table(schema3, random_records(120, seed=17))
    with ShardedCluster(table, ClusterConfig(shards=2)) as cluster:
        cluster.insert_batch(table)
        with pytest.raises(ValueError, match="hilbert"):
            cluster.release(5, strategy="subtree")
        with pytest.raises(ValueError, match="constraint"):
            cluster.release(5, constraint=lambda records: True)
        with pytest.raises(ValueError, match="compacted"):
            cluster.release(5, compacted=False)
        with pytest.raises(ValueError, match="base k"):
            cluster.release(2)


# -- fault surfacing ---------------------------------------------------------


def test_killed_shard_surfaces_closed_error_not_hang(schema3) -> None:
    records = random_records(240, seed=19)
    table = Table(schema3, records)
    cluster = ShardedCluster(
        table, ClusterConfig(shards=2, request_timeout=10.0)
    )
    try:
        cluster.insert_batch(table)
        assert cluster.release(5).k_satisfied
        os.kill(cluster.worker_pids()[0], signal.SIGKILL)
        time.sleep(0.2)
        started = time.monotonic()
        with pytest.raises(ServiceClosedError):
            cluster.release(5)
        # Death is detected via the closed socket, far below the timeout.
        assert time.monotonic() - started < 5.0
        assert cluster.dead_shards == [0]
        assert cluster.health()["status"] == "stalled"
        # Writes routed to the dead shard fail fast too.
        dead_owned = next(
            record for record in records if cluster.shard_of(record.point) == 0
        )
        with pytest.raises(ServiceClosedError):
            cluster.insert(
                Record(10_000, dead_owned.point, dead_owned.sensitive)
            )
        # The metrics endpoint still answers from the surviving shards.
        assert "repro_cluster_dead_shards 1" in cluster.metrics_text()
    finally:
        cluster.close()


def test_closed_cluster_raises_everywhere(schema3) -> None:
    table = Table(schema3, random_records(120, seed=23))
    cluster = ShardedCluster(table, ClusterConfig(shards=2))
    cluster.insert_batch(table)
    cluster.close()
    cluster.close()  # idempotent
    with pytest.raises(ServiceClosedError):
        cluster.release(5)
    with pytest.raises(ServiceClosedError):
        cluster.submit_insert(table.records[0])
    with pytest.raises(ServiceClosedError):
        cluster.barrier()


# -- metrics exposition ------------------------------------------------------


def test_prometheus_cluster_text_labels_and_parses() -> None:
    parent = {"counters": {"cluster.releases": 3}, "gauges": {}, "histograms": {}}
    shard = {
        "counters": {"serve.write_groups": 5},
        "gauges": {"serve.epoch": 5.0},
        "histograms": {
            "serve.commit_seconds": {
                "p50": 0.1, "p90": 0.2, "p99": 0.3, "sum": 1.0, "count": 5
            }
        },
    }
    text = prometheus_cluster_text(
        parent,
        [({"shard": "0"}, shard), ({"shard": "1"}, shard)],
        {"cluster.epoch": 10.0},
    )
    assert text.count("# TYPE repro_serve_write_groups counter") == 1
    samples = parse_prometheus_text(text)
    assert samples[("repro_cluster_releases", ())] == 3.0
    assert samples[("repro_cluster_epoch", ())] == 10.0
    assert samples[("repro_serve_write_groups", (("shard", "0"),))] == 5.0
    assert samples[("repro_serve_write_groups", (("shard", "1"),))] == 5.0
    quantile = (("quantile", "0.5"), ("shard", "1"))
    assert samples[("repro_serve_commit_seconds", quantile)] == 0.1
    rendered = render_live({"status": "healthy"}, samples)
    assert "== shard 0 ==" in rendered
    assert "[shard 1]" in rendered


def test_live_cluster_metrics_roundtrip(schema3) -> None:
    table = Table(schema3, random_records(200, seed=29))
    with ShardedCluster(table, ClusterConfig(shards=2)) as cluster:
        cluster.insert_batch(table)
        cluster.release(5)
        samples = parse_prometheus_text(cluster.metrics_text())
        assert samples[("repro_cluster_shards", ())] == 2.0
        shard_labels = {
            dict(labels).get("shard")
            for (_, labels) in samples
            if any(key == "shard" for key, _ in labels)
        }
        assert shard_labels == {"0", "1"}
