"""Concurrency stress: N reader threads against a live single writer.

The differential heart of the suite: the service journals every applied
write group, and entry ``i`` of the journal is exactly the epoch-``i`` to
``i+1`` transition.  Every snapshot a reader observed is therefore
checkable after the fact — replay ``journal[:epoch]`` onto a fresh engine
and the serial release at the same k must be bit-identical.  That property
fails if a reader ever saw a tree mid-mutation (torn read), if the cache
served a pre-mutation release after its epoch went stale, or if group
coalescing reordered writes.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.core.anonymizer import RTreeAnonymizer
from repro.core.partition import release_digest
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.serve import AnonymizerService, ServiceConfig

from .conftest import random_records

READERS = 4
KS = (5, 10, 25)
BASE_RECORDS = 1_200
WRITE_OPS = 300


def _replay_to_epoch(schema, journal, epoch: int) -> RTreeAnonymizer:
    engine = RTreeAnonymizer(Table(schema, ()), base_k=5)
    for entry in journal[:epoch]:
        kind = entry[0]
        if kind == "bulk_load":
            engine.bulk_load(entry[1])
        elif kind == "insert_batch":
            engine.insert_batch(entry[1])
        elif kind == "delete":
            engine.delete(entry[1], entry[2])
        elif kind == "update":
            engine.update(entry[1], entry[2], entry[3])
        else:
            raise AssertionError(f"unexpected journal entry {kind!r}")
    return engine


@pytest.mark.stress
def test_concurrent_readers_see_isolated_audit_clean_snapshots(schema3) -> None:
    records = random_records(BASE_RECORDS, seed=41)
    table = Table(schema3, records)
    engine = RTreeAnonymizer(table, base_k=5)
    service = AnonymizerService(engine, ServiceConfig(journal=True))
    obs.enable()
    try:
        service.load(table)
        stop = threading.Event()
        observed: list[list] = [[] for _ in range(READERS)]
        errors: list[BaseException] = []

        def reader(slot: int) -> None:
            try:
                turn = 0
                while not stop.is_set():
                    snapshot = service.release(KS[turn % len(KS)])
                    observed[slot].append(snapshot)
                    turn += 1
            except BaseException as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(slot,), daemon=True)
            for slot in range(READERS)
        ]
        for thread in threads:
            thread.start()

        # The live writer: single-record submissions without waiting, so
        # the writer thread coalesces whatever runs build up while the
        # readers hold it off; FIFO order guarantees each sprinkled-in
        # delete lands after the insert it targets.
        inserted: list[Record] = []
        futures = []
        for i in range(WRITE_OPS):
            record = Record(
                100_000 + i,
                (float(7 * i % 100), float(3 * i % 100), float(11 * i % 100)),
                ("flu",),
            )
            futures.append(service.submit_insert(record))
            inserted.append(record)
            if i % 50 == 49:
                victim = inserted.pop(0)
                futures.append(service.submit_delete(victim.rid, victim.point))
        final_epoch = service.barrier()
        assert all(future.exception(timeout=60) is None for future in futures)

        # The cache must never serve a pre-mutation release after the
        # epoch bump: with the writer quiesced, every read reflects the
        # final epoch.
        settle = [service.release(k) for k in KS for _ in range(3)]
        assert all(snapshot.epoch == final_epoch for snapshot in settle)

        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"reader raised: {errors[0]!r}"
        assert obs.OBS.counter_value("serve.cache_hits") > 0

        journal = service.journal
        assert final_epoch == len(journal)
        snapshots = [s for slots in observed for s in slots] + settle
        assert all(s.k_satisfied for s in snapshots)  # every audit clean

        # Per-reader, per-recipe epochs never go backwards — a reader can
        # never be handed an older release than one it already saw.
        for slots in observed:
            latest: dict[int, int] = {}
            for snapshot in slots:
                assert snapshot.epoch >= latest.get(snapshot.k, 0)
                latest[snapshot.k] = snapshot.epoch

        # Differential check: every distinct (epoch, k) a reader observed
        # must be bit-identical to the serial replay of the journal prefix.
        # Two snapshots at the same (epoch, k) must agree before we even
        # replay (the cache can only have served one of them).
        by_state: dict[tuple[int, int], str] = {}
        for snapshot in snapshots:
            key = (snapshot.epoch, snapshot.k)
            if key in by_state:
                assert by_state[key] == snapshot.digest
            else:
                by_state[key] = snapshot.digest
        epochs = {epoch for epoch, _ in by_state}
        sampled = {min(epochs), final_epoch}
        sampled.update(epoch for epoch in epochs if epoch % 7 == 0)
        checked = 0
        for (epoch, k), digest in sorted(by_state.items()):
            if epoch not in sampled:
                continue  # sample the trail; replay cost is per-epoch
            serial = _replay_to_epoch(schema3, journal, epoch)
            assert release_digest(serial.anonymize(k)) == digest, (
                f"snapshot at epoch {epoch}, k={k} diverged from the "
                "serial replay"
            )
            checked += 1
        assert checked >= 3  # the settle phase alone pins all of KS
    finally:
        stop.set()
        service.close()
        obs.disable()
        obs.reset()


@pytest.mark.stress
def test_backpressure_bounds_the_queue_under_a_slow_writer(schema3) -> None:
    table = Table(schema3, random_records(400, seed=42))
    engine = RTreeAnonymizer(table, base_k=5)
    config = ServiceConfig(max_queue=8, max_batch=4)
    with AnonymizerService(engine, config) as service:
        service.load(table)
        futures = [
            service.submit_insert(
                Record(200_000 + i, (float(i % 90), 1.0, 2.0), ("flu",))
            )
            for i in range(64)
        ]
        assert service.queue_depth() <= config.max_queue + 1
        service.barrier()
        assert all(future.done() for future in futures)
        assert len(service) == 400 + 64


@pytest.mark.stress
def test_concurrent_distinct_recipes_share_the_cache_safely(schema3) -> None:
    table = Table(schema3, random_records(800, seed=43))
    engine = RTreeAnonymizer(table, base_k=5)
    with AnonymizerService(engine) as service:
        service.load(table)
        results: list[str] = []
        errors: list[BaseException] = []

        def reader(k: int) -> None:
            try:
                for _ in range(20):
                    results.append((k, service.release(k).digest))
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(k,), daemon=True)
            for k in (5, 10, 25, 50)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        # No writes happened: all reads of one k agree, and they match a
        # direct engine release.
        for k in (5, 10, 25, 50):
            digests = {digest for key, digest in results if key == k}
            assert digests == {release_digest(engine.anonymize(k))}
