"""Quality metrics: Definitions 3, 4 and 5 — hand-checked and structural."""

from __future__ import annotations

import math

import pytest

from repro.core.compaction import compact_table
from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, AttributeKind, Schema
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.hierarchy.tree import GeneralizationHierarchy
from repro.metrics.certainty import certainty_penalty, ncp
from repro.metrics.discernibility import (
    discernibility_lower_bound,
    discernibility_penalty,
    discernibility_per_record,
)
from repro.metrics.kl import kl_divergence, partition_entropy
from repro.metrics.quality import quality_report


@pytest.fixture
def schema2() -> Schema:
    return Schema((Attribute.numeric("x", 0, 10), Attribute.numeric("y", 0, 10)))


def release_of(
    schema: Schema, groups: list[list[tuple[float, float]]], loose: bool = False
) -> tuple[AnonymizedTable, Table]:
    rid = 0
    partitions = []
    original = Table(schema)
    for group in groups:
        records = []
        for point in group:
            record = Record(rid, point)
            original.append(record)
            records.append(record)
            rid += 1
        box = (
            Box((0.0, 0.0), (10.0, 10.0))
            if loose
            else Box.from_points(r.point for r in records)
        )
        partitions.append(Partition(tuple(records), box))
    return AnonymizedTable(schema, partitions), original


class TestDiscernibility:
    def test_hand_computed(self, schema2) -> None:
        release, _ = release_of(
            schema2, [[(0, 0), (1, 1)], [(5, 5), (6, 6), (7, 7)]]
        )
        assert discernibility_penalty(release) == 2 * 2 + 3 * 3

    def test_per_record(self, schema2) -> None:
        release, _ = release_of(schema2, [[(0, 0), (1, 1)], [(5, 5), (6, 6)]])
        assert discernibility_per_record(release) == pytest.approx(2.0)

    def test_lower_bound(self) -> None:
        assert discernibility_lower_bound(10, 5) == 2 * 25
        assert discernibility_lower_bound(11, 5) == 25 + 36
        with pytest.raises(ValueError):
            discernibility_lower_bound(3, 5)
        with pytest.raises(ValueError):
            discernibility_lower_bound(3, 0)

    def test_blind_to_compaction(self, schema2) -> None:
        """The Figure 10(a) fact: compaction cannot move discernibility."""
        release, _ = release_of(schema2, [[(0, 0), (4, 4)]], loose=True)
        assert discernibility_penalty(release) == discernibility_penalty(
            compact_table(release)
        )


class TestCertainty:
    def test_ncp_hand_computed(self) -> None:
        # Extent 2 of range 10 on x, extent 4 of range 8 on y.
        box = Box((1.0, 2.0), (3.0, 6.0))
        assert ncp(box, (10.0, 8.0)) == pytest.approx(0.2 + 0.5)

    def test_ncp_weighted(self) -> None:
        box = Box((0.0, 0.0), (5.0, 4.0))
        assert ncp(box, (10.0, 8.0), weights=(2.0, 1.0)) == pytest.approx(1.5)

    def test_ncp_zero_range_attribute_costless(self) -> None:
        box = Box((1.0, 2.0), (3.0, 2.0))
        assert ncp(box, (10.0, 0.0)) == pytest.approx(0.2)

    def test_ncp_weight_count_mismatch(self) -> None:
        with pytest.raises(ValueError):
            ncp(Box((0.0,), (1.0,)), (10.0,), weights=(1.0, 2.0))

    def test_table_score_sums_per_record(self, schema2) -> None:
        release, original = release_of(
            schema2, [[(0, 0), (2, 4)], [(6, 6), (10, 8)]]
        )
        # Data ranges: x 0..10 -> 10, y 0..8 -> 8.
        expected = 2 * (2 / 10 + 4 / 8) + 2 * (4 / 10 + 2 / 8)
        assert certainty_penalty(release, original) == pytest.approx(expected)

    def test_compaction_strictly_helps_on_loose_boxes(self, schema2) -> None:
        release, original = release_of(
            schema2, [[(1, 1), (2, 2)], [(8, 8), (9, 9)]], loose=True
        )
        assert certainty_penalty(compact_table(release), original) < certainty_penalty(
            release, original
        )

    def test_hierarchy_branch(self) -> None:
        hierarchy = GeneralizationHierarchy.from_spec(
            "*", {"north": ["a", "b"], "south": ["c", "d"]}
        )
        schema = Schema(
            (
                Attribute(
                    "region", AttributeKind.CATEGORICAL, 0, 3, hierarchy=hierarchy
                ),
            )
        )
        records = (Record(0, (0.0,)), Record(1, (1.0,)))
        release = AnonymizedTable(
            schema, [Partition(records, Box((0.0,), (1.0,)))]
        )
        original = Table(schema, list(records))
        # Codes 0..1 cover the two "north" leaves: charge 2/4 per record.
        score = certainty_penalty(release, original, use_hierarchies=True)
        assert score == pytest.approx(2 * (2 / 4))


class TestKL:
    def test_zero_for_exact_release(self, schema2) -> None:
        """Every partition degenerate (one distinct point) -> the implied
        density equals the empirical one -> KL = 0."""
        release, original = release_of(
            schema2, [[(1, 1), (1, 1)], [(5, 5), (5, 5)]]
        )
        assert kl_divergence(release, original) == pytest.approx(0.0)

    def test_positive_for_generalized_release(self, schema2) -> None:
        release, original = release_of(schema2, [[(0, 0), (3, 4)]])
        assert kl_divergence(release, original) > 0.0

    def test_compaction_lowers_kl(self, schema2) -> None:
        release, original = release_of(
            schema2, [[(1, 1), (2, 2)], [(8, 8), (9, 9)]], loose=True
        )
        assert kl_divergence(compact_table(release), original) < kl_divergence(
            release, original
        )

    def test_hand_computed_single_partition(self, schema2) -> None:
        # Two records in a box of discrete volume 2x1=2: p2 = (2/2)/(2*2)?
        # p2(cell) = |P| / (N * volume) = 2 / (2 * 2) = 0.5; p1(cell) = 0.5.
        release, original = release_of(schema2, [[(0, 0), (1, 0)]])
        assert kl_divergence(release, original) == pytest.approx(0.0)
        # Now a box with a gap: volume 3, two occupied cells.
        release, original = release_of(schema2, [[(0, 0), (2, 0)]])
        # p1 = 1/2 per cell; p2 = 2/(2*3) = 1/3 per cell.
        expected = 2 * 0.5 * math.log(0.5 / (1 / 3))
        assert kl_divergence(release, original) == pytest.approx(expected)

    def test_record_count_mismatch_rejected(self, schema2) -> None:
        release, original = release_of(schema2, [[(0, 0), (1, 1)]])
        truncated = Table(schema2, original.records[:1])
        with pytest.raises(ValueError):
            kl_divergence(release, truncated)

    def test_partition_entropy(self, schema2) -> None:
        release, _ = release_of(schema2, [[(0, 0), (1, 1)], [(5, 5), (6, 6)]])
        assert partition_entropy(release) == pytest.approx(math.log(2))


class TestQualityReport:
    def test_report_bundles_all_three(self, schema2) -> None:
        release, original = release_of(schema2, [[(0, 0), (2, 2)]])
        report = quality_report(release, original)
        assert report.discernibility == 4
        # Data ranges are both 2 (two records at (0,0) and (2,2)), so each
        # record is charged the full normalized extent on both attributes.
        assert report.certainty == pytest.approx(2 * (1.0 + 1.0))
        assert report.kl > 0
        assert report.partitions == 1
        assert report.records == 2
        assert report.row() == (
            report.discernibility,
            report.certainty,
            report.kl,
        )
