"""Cluster-vs-single differential suite: sharding must not change a bit.

The cluster's contract is that scatter-gathered releases are
*bit-identical* to what one single-writer :class:`AnonymizerService`
holding all the records publishes under the ``"hilbert"`` strategy: the
routing sends each record to the shard owning its Hilbert-key range,
per-shard runs concatenate into the global ``(key, rid)`` order, and the
seam-repaired stitch reproduces the serial ``chunk_with_floor`` grouping
exactly.  The tier-1 cell checks one dataset/k/shard combination plus
the journal-replay reproduction; the ``stress`` grid sweeps
{census, agrawal} x k {5, 25} x shards {2, 4}.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, ShardedCluster
from repro.core.anonymizer import RTreeAnonymizer
from repro.dataset.agrawal import make_agrawal_table
from repro.dataset.census import make_census_table
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.obs.audit import audit_release
from repro.serve import AnonymizerService, ServiceConfig


def _make_table(dataset: str, records: int, seed: int) -> Table:
    if dataset == "census":
        return make_census_table(records, seed=seed)
    if dataset == "agrawal":
        return make_agrawal_table(records, seed=seed)
    raise AssertionError(dataset)


def _single_digest(table: Table, k: int) -> str:
    engine = RTreeAnonymizer(Table(table.schema, ()), base_k=5)
    with AnonymizerService(engine) as service:
        service.insert_batch(table)
        return service.release(k, strategy="hilbert").digest


def _mutate(service, table: Table) -> None:
    """The shared mutation tail: deletes, updates, and fresh inserts."""
    records = table.records
    for record in records[:10]:
        service.delete(record.rid, record.point)
    far = records[-1]
    for record in records[10:20]:
        service.update(
            record.rid, record.point, Record(record.rid, far.point, record.sensitive)
        )
    next_rid = max(record.rid for record in records) + 1
    service.insert_batch(
        tuple(
            Record(next_rid + offset, record.point, record.sensitive)
            for offset, record in enumerate(records[:15])
        )
    )


def _single_digest_mutated(table: Table, k: int) -> str:
    engine = RTreeAnonymizer(Table(table.schema, ()), base_k=5)
    with AnonymizerService(engine) as service:
        service.insert_batch(table)
        _mutate(service, table)
        return service.release(k, strategy="hilbert").digest


def _check_cell(dataset: str, records: int, k: int, shards: int, seed: int) -> None:
    table = _make_table(dataset, records, seed)
    with ShardedCluster(table, ClusterConfig(shards=shards)) as cluster:
        cluster.insert_batch(table)
        snapshot = cluster.release(k)
        assert snapshot.digest == _single_digest(table, k)
        # The stitched release passes a strict k-floor audit, seams included.
        audit = audit_release(snapshot.table, k, base_k=5)
        assert audit["k_satisfied"], audit
        assert snapshot.record_count == len(table.records)
        # Mutations route through the shards; bit-identity must survive.
        _mutate(cluster, table)
        mutated = cluster.release(k)
        assert mutated.digest == _single_digest_mutated(table, k)
        assert audit_release(mutated.table, k, base_k=5)["k_satisfied"]


def test_cluster_differential_tier1_cell() -> None:
    _check_cell("census", 600, 5, 2, seed=7)


@pytest.mark.stress
@pytest.mark.parametrize("dataset", ["census", "agrawal"])
@pytest.mark.parametrize("k", [5, 25])
@pytest.mark.parametrize("shards", [2, 4])
def test_cluster_differential_grid(dataset: str, k: int, shards: int) -> None:
    _check_cell(dataset, 2_000, k, shards, seed=17)


def test_concatenated_journal_replay_reproduces_cluster_release() -> None:
    """Replaying every shard's journal into one engine rebuilds the release.

    Each shard's service journals its applied write groups.  Because the
    ``"hilbert"`` release is a pure function of the record *set*, replaying
    the concatenated per-shard journals onto a fresh single-writer engine
    must reproduce any cluster release bit for bit — the recovery story
    for the whole cluster.
    """
    table = make_census_table(500, seed=9)
    config = ClusterConfig(shards=3, service=ServiceConfig(journal=True))
    with ShardedCluster(table, config) as cluster:
        cluster.insert_batch(table)
        _mutate(cluster, table)
        snapshot = cluster.release(5)
        journals = cluster.shard_journals()
        assert len(journals) == 3
        assert all(journal for journal in journals)
        replay = RTreeAnonymizer(Table(table.schema, ()), base_k=5)
        for journal in journals:
            for entry in journal:
                kind = entry[0]
                if kind in ("bulk_load", "insert_batch"):
                    replay.insert_batch(entry[1])
                elif kind == "delete":
                    replay.delete(entry[1], entry[2])
                elif kind == "update":
                    replay.update(entry[1], entry[2], entry[3])
                else:
                    raise AssertionError(f"unexpected journal entry {kind!r}")
        replayed = replay.anonymize(5, strategy="hilbert")
        from repro.core.partition import release_digest

        assert release_digest(replayed) == snapshot.digest
