"""Generalization hierarchies: LCA, leaf counts, ordering, decoding."""

from __future__ import annotations

import pytest

from repro.hierarchy.tree import GeneralizationHierarchy


@pytest.fixture
def geography() -> GeneralizationHierarchy:
    return GeneralizationHierarchy.from_spec(
        "USA",
        {
            "Midwest": {"WI": ["53706", "53715", "53710"], "IL": ["60601", "60602"]},
            "South": {"TX": ["73301"], "GA": ["30301", "30302"]},
        },
    )


class TestStructure:
    def test_leaf_count(self, geography: GeneralizationHierarchy) -> None:
        assert len(geography) == 8
        assert geography.root.leaf_count == 8
        assert geography.node("Midwest").leaf_count == 5
        assert geography.node("WI").leaf_count == 3
        assert geography.leaf("73301").leaf_count == 1

    def test_height_and_depth(self, geography: GeneralizationHierarchy) -> None:
        assert geography.height == 3
        assert geography.root.depth == 0
        assert geography.leaf("53706").depth == 3

    def test_contains(self, geography: GeneralizationHierarchy) -> None:
        assert "53706" in geography
        assert "Madison" not in geography

    def test_duplicate_ground_values_rejected(self) -> None:
        with pytest.raises(ValueError):
            GeneralizationHierarchy.from_spec("root", {"a": ["x"], "b": ["x"]})

    def test_from_parents(self) -> None:
        h = GeneralizationHierarchy.from_parents(
            {"x": "left", "y": "left", "z": "right", "left": "root", "right": "root"},
            root_label="root",
        )
        assert len(h) == 3
        assert h.lowest_common_ancestor(["x", "y"]).label == "left"

    def test_flat(self) -> None:
        h = GeneralizationHierarchy.flat(["M", "F"])
        assert len(h) == 2
        assert h.lowest_common_ancestor(["M", "F"]).label == "*"


class TestLCA:
    def test_single_value_is_its_own_leaf(self, geography) -> None:
        assert geography.lowest_common_ancestor(["53706"]).label == "53706"

    def test_siblings_generalize_to_parent(self, geography) -> None:
        assert geography.lowest_common_ancestor(["53706", "53715"]).label == "WI"

    def test_cousins_generalize_higher(self, geography) -> None:
        assert geography.lowest_common_ancestor(["53706", "60601"]).label == "Midwest"
        assert geography.lowest_common_ancestor(["53706", "73301"]).label == "USA"

    def test_duplicates_ignored(self, geography) -> None:
        assert (
            geography.lowest_common_ancestor(["53706", "53706", "53715"]).label == "WI"
        )

    def test_empty_rejected(self, geography) -> None:
        with pytest.raises(ValueError):
            geography.lowest_common_ancestor([])

    def test_generalization_fraction(self, geography) -> None:
        # WI has 3 of 8 leaves — the NCP charge of Definition 4.
        assert geography.generalization_fraction(["53706", "53715"]) == 3 / 8
        assert geography.generalization_fraction(["53706"]) == 1 / 8


class TestOrdering:
    def test_ordering_is_contiguous_within_subtrees(self, geography) -> None:
        codes = geography.ordering()
        assert sorted(codes.values()) == list(range(8))
        wi = sorted(codes[v] for v in ("53706", "53715", "53710"))
        # The "intuitive ordering": sibling leaves get adjacent codes.
        assert wi == list(range(wi[0], wi[0] + 3))

    def test_decode_interval_recovers_lca(self, geography) -> None:
        codes = geography.ordering()
        wi = sorted(codes[v] for v in ("53706", "53715", "53710"))
        assert geography.decode_interval(wi[0], wi[-1]).label == "WI"
        assert geography.decode_interval(0, 7).label == "USA"

    def test_iter_leaves_matches_ordering(self, geography) -> None:
        labels = [leaf.label for leaf in geography.root.iter_leaves()]
        codes = geography.ordering()
        assert labels == sorted(codes, key=codes.get)
