"""The benchmark-regression trail: run, write, load, compare, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.bench.regression import (
    BENCH_SCHEMA_VERSION,
    KEY_COUNTERS,
    compare_bench,
    core_figures,
    load_bench,
    run_core_bench,
    write_bench,
)

#: A tiny pinned workload so the trail tests run in well under a second.
TINY_FIGURES = [
    ("fig7a", {"records": 600, "ks": (5,), "seed": 1}),
]


@pytest.fixture(scope="module")
def tiny_bench() -> dict:
    return run_core_bench(figures=TINY_FIGURES)


class TestRunCoreBench:
    def test_document_shape(self, tiny_bench: dict) -> None:
        assert tiny_bench["schema_version"] == BENCH_SCHEMA_VERSION
        assert "environment" in tiny_bench
        entry = tiny_bench["figures"]["fig7a"]
        assert entry["seconds"] > 0
        assert set(entry["counters"]) == set(KEY_COUNTERS)
        # The instrumented run must actually have counted the hot paths.
        assert entry["counters"]["rtree.leaf_splits"] > 0
        assert entry["counters"]["anonymizer.releases"] > 0
        json.dumps(tiny_bench)

    def test_counters_are_deterministic(self, tiny_bench: dict) -> None:
        again = run_core_bench(figures=TINY_FIGURES)
        assert (
            again["figures"]["fig7a"]["counters"]
            == tiny_bench["figures"]["fig7a"]["counters"]
        )

    def test_quick_and_core_sets_cover_the_same_figures(self) -> None:
        assert [name for name, _ in core_figures(quick=True)] == [
            name for name, _ in core_figures(quick=False)
        ]

    def test_leaves_global_obs_disabled(self, tiny_bench: dict) -> None:
        from repro import obs

        assert not obs.OBS.enabled


class TestWriteLoad:
    def test_round_trip(self, tiny_bench: dict, tmp_path) -> None:
        path = write_bench(tiny_bench, tmp_path / "bench.json")
        loaded = load_bench(path)
        assert loaded == json.loads(json.dumps(tiny_bench))

    def test_load_rejects_unknown_schema(self, tmp_path) -> None:
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999, "figures": {}}))
        with pytest.raises(ValueError, match="schema version"):
            load_bench(path)


class TestCompare:
    def test_identical_runs_pass(self, tiny_bench: dict) -> None:
        report = compare_bench(tiny_bench, tiny_bench)
        assert report.ok
        assert [figure.status for figure in report.figures] == ["ok"]
        assert "PASS" in report.render()

    def test_injected_slowdown_fails(self, tiny_bench: dict) -> None:
        slow = json.loads(json.dumps(tiny_bench))
        entry = slow["figures"]["fig7a"]
        entry["seconds"] = entry["seconds"] * 10
        report = compare_bench(slow, tiny_bench, time_tolerance=1.0)
        assert not report.ok
        (figure,) = report.regressions
        assert figure.status == "regression"
        assert figure.time_ratio == pytest.approx(10.0)
        assert "FAIL" in report.render()

    def test_counter_drift_fails_even_when_fast(self, tiny_bench: dict) -> None:
        drifted = json.loads(json.dumps(tiny_bench))
        drifted["figures"]["fig7a"]["counters"]["rtree.leaf_splits"] += 50
        report = compare_bench(drifted, tiny_bench)
        assert not report.ok
        assert any(
            "rtree.leaf_splits" in message
            for figure in report.regressions
            for message in figure.messages
        )

    def test_config_mismatch_is_a_hard_failure(self, tiny_bench: dict) -> None:
        changed = json.loads(json.dumps(tiny_bench))
        changed["figures"]["fig7a"]["config"]["records"] = 999
        report = compare_bench(changed, tiny_bench)
        assert not report.ok
        assert report.figures[0].status == "config-mismatch"

    def test_extras_ride_along_but_never_fail_a_comparison(self) -> None:
        document = run_core_bench(
            figures=[
                (
                    "serve",
                    {
                        "records": 400,
                        "write_rounds": 2,
                        "write_batch": 20,
                        "reads_per_round": 3,
                        "ks": (5,),
                        "seed": 1,
                        "repeats": 1,
                    },
                )
            ]
        )
        entry = document["figures"]["serve"]
        assert "telemetry_overhead" in entry["extras"]
        assert "telemetry_on_reads_per_s" in entry["extras"]
        # The extras are informational: doctoring them must not trip the
        # comparison, which only reads config/seconds/counters.
        doctored = json.loads(json.dumps(document))
        doctored["figures"]["serve"]["extras"]["telemetry_overhead"] = 99.0
        assert compare_bench(doctored, document).ok

    def test_missing_and_new_figures(self, tiny_bench: dict) -> None:
        empty = {"schema_version": BENCH_SCHEMA_VERSION, "figures": {}}
        missing = compare_bench(empty, tiny_bench)
        assert not missing.ok
        assert missing.figures[0].status == "missing"
        new = compare_bench(tiny_bench, empty)
        assert new.ok  # new figures never fail a comparison
        assert new.figures[0].status == "new"


class TestCLIBench:
    def test_bench_writes_and_compares_clean(
        self, tiny_bench: dict, tmp_path, monkeypatch
    ) -> None:
        from repro import cli
        from repro.bench import regression

        monkeypatch.setattr(
            regression, "core_figures", lambda quick=False: TINY_FIGURES
        )
        baseline = write_bench(tiny_bench, tmp_path / "baseline.json")
        out = tmp_path / "current.json"
        exit_code = cli.main(
            [
                "bench",
                "--quick",
                "--out",
                str(out),
                "--compare",
                str(baseline),
                "--tolerance",
                "50",
            ]
        )
        assert exit_code == 0
        assert out.exists()

    def test_bench_exits_nonzero_on_regression(
        self, tiny_bench: dict, tmp_path, monkeypatch
    ) -> None:
        from repro import cli
        from repro.bench import regression

        monkeypatch.setattr(
            regression, "core_figures", lambda quick=False: TINY_FIGURES
        )
        # Inject an impossibly fast baseline: the fresh run must exceed the
        # tolerance and the CLI must signal the regression via exit code.
        fast = json.loads(json.dumps(tiny_bench))
        fast["figures"]["fig7a"]["seconds"] = 1e-9
        baseline = write_bench(fast, tmp_path / "baseline.json")
        exit_code = cli.main(
            [
                "bench",
                "--quick",
                "--out",
                str(tmp_path / "current.json"),
                "--compare",
                str(baseline),
            ]
        )
        assert exit_code == 1
