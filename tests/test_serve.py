"""Unit tests for the serving layer: cache, queue, and service semantics."""

from __future__ import annotations

import queue as stdlib_queue

import pytest

from repro import api
from repro.core.anonymizer import RTreeAnonymizer
from repro.core.partition import release_digest
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.durability import DurabilityConfig, recover
from repro.serve import (
    AnonymizerService,
    ReleaseCache,
    ReleaseSnapshot,
    ServiceClosedError,
    ServiceConfig,
    WriteOp,
    WriteQueue,
)

from .conftest import random_records


def _snapshot(epoch: int, k: int = 10) -> ReleaseSnapshot:
    from repro.core.partition import AnonymizedTable, Partition
    from repro.dataset.schema import Attribute, Schema
    from repro.geometry.box import Box

    schema = Schema((Attribute.numeric("a", 0, 100),))
    records = tuple(Record(rid, (float(rid),), ()) for rid in range(k))
    partition = Partition(records, Box((0.0,), (float(k),)))
    return ReleaseSnapshot(
        table=AnonymizedTable(schema, (partition,)),
        audit={"k_satisfied": True},
        digest=f"digest-{epoch}",
        k=k,
        strategy="subtree",
        compacted=True,
        epoch=epoch,
    )


class TestReleaseCache:
    def test_hit_requires_matching_epoch(self) -> None:
        cache = ReleaseCache()
        key = (10, "subtree", True, None)
        cache.put(key, _snapshot(epoch=3))
        assert cache.get(key, 3) is not None
        assert cache.stats.hits == 1

    def test_stale_epoch_is_dropped_lazily(self) -> None:
        cache = ReleaseCache()
        key = (10, "subtree", True, None)
        cache.put(key, _snapshot(epoch=3))
        assert cache.get(key, 4) is None  # a write bumped the epoch
        assert cache.stats.invalidations == 1
        assert len(cache) == 0  # dropped on the spot, not just skipped

    def test_unknown_key_is_a_miss(self) -> None:
        cache = ReleaseCache()
        assert cache.get((10, "subtree", True, None), 0) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_distinct_recipes_do_not_collide(self) -> None:
        cache = ReleaseCache()
        cache.put((10, "subtree", True, None), _snapshot(1, k=10))
        cache.put((25, "subtree", True, None), _snapshot(1, k=25))
        first = cache.get((10, "subtree", True, None), 1)
        second = cache.get((25, "subtree", True, None), 1)
        assert first is not None and first.k == 10
        assert second is not None and second.k == 25

    def test_put_sweeps_stale_entries_of_never_reused_keys(self) -> None:
        """Regression: churned constraint identities used to pin dead
        snapshots forever — lazy invalidation only fired when the exact
        key was looked up again."""
        cache = ReleaseCache()
        for epoch in range(1, 51):
            constraint = object()  # a fresh identity every release
            cache.put((10, "subtree", True, constraint), _snapshot(epoch=epoch))
        assert len(cache) == 1  # only the newest-epoch entry survives
        assert cache.stats.invalidations == 49

    def test_put_keeps_same_epoch_siblings(self) -> None:
        cache = ReleaseCache()
        cache.put((10, "subtree", True, None), _snapshot(1, k=10))
        cache.put((25, "subtree", True, None), _snapshot(1, k=25))
        assert len(cache) == 2  # same epoch: both recipes stay live

    def test_max_entries_bounds_same_epoch_keys(self) -> None:
        cache = ReleaseCache(max_entries=4)
        for k in range(10, 20):
            cache.put((k, "subtree", True, None), _snapshot(1, k=k))
        assert len(cache) == 4
        assert cache.get((19, "subtree", True, None), 1) is not None
        assert cache.get((10, "subtree", True, None), 1) is None

    def test_max_entries_must_be_positive(self) -> None:
        with pytest.raises(ValueError):
            ReleaseCache(max_entries=0)


class TestWriteQueue:
    def test_consecutive_inserts_coalesce_into_one_group(self) -> None:
        q = WriteQueue(maxsize=16)
        for i in range(5):
            q.put(WriteOp("insert", (i,)))
        group = q.take_group(max_batch=8)
        assert group is not None and len(group) == 5

    def test_non_insert_breaks_the_group_without_reordering(self) -> None:
        q = WriteQueue(maxsize=16)
        q.put(WriteOp("insert", (1,)))
        q.put(WriteOp("insert", (2,)))
        q.put(WriteOp("delete", (3, (0.0,))))
        q.put(WriteOp("insert", (4,)))
        first = q.take_group(max_batch=8)
        second = q.take_group(max_batch=8)
        third = q.take_group(max_batch=8)
        assert [op.kind for op in first] == ["insert", "insert"]
        assert [op.kind for op in second] == ["delete"]
        assert [op.kind for op in third] == ["insert"]

    def test_max_batch_caps_a_group(self) -> None:
        q = WriteQueue(maxsize=32)
        for i in range(10):
            q.put(WriteOp("insert", (i,)))
        group = q.take_group(max_batch=4)
        assert group is not None and len(group) == 4

    def test_full_queue_raises_on_timeout(self) -> None:
        q = WriteQueue(maxsize=1)
        q.put(WriteOp("insert", (1,)))
        with pytest.raises(stdlib_queue.Full):
            q.put(WriteOp("insert", (2,)), timeout=0.01)

    def test_stop_sentinel_ends_the_stream(self) -> None:
        q = WriteQueue(maxsize=4)
        q.put_stop()
        assert q.take_group(max_batch=4) is None


@pytest.fixture
def service(schema3) -> AnonymizerService:
    table = Table(schema3, random_records(600, seed=7))
    engine = RTreeAnonymizer(table, base_k=5)
    service = AnonymizerService(engine, ServiceConfig(journal=True))
    service.load(table)
    yield service
    service.close()


class TestAnonymizerService:
    def test_repeated_release_serves_the_cached_snapshot(self, service) -> None:
        first = service.release(10)
        second = service.release(10)
        assert second is first  # the very same immutable object
        assert service.cache.stats.hits == 1

    def test_mutation_invalidates_cached_releases(self, service) -> None:
        before = service.release(10)
        service.insert(Record(10_000, (1.0, 2.0, 3.0), ("flu",)))
        after = service.release(10)
        assert after is not before
        assert after.epoch > before.epoch
        assert after.record_count == before.record_count + 1

    def test_cache_off_recomputes_every_read(self, schema3) -> None:
        table = Table(schema3, random_records(300, seed=8))
        engine = RTreeAnonymizer(table, base_k=5)
        with AnonymizerService(
            engine, ServiceConfig(cache_releases=False)
        ) as service:
            service.load(table)
            first = service.release(10)
            second = service.release(10)
            assert second is not first
            assert second.digest == first.digest  # same data, same release
            assert service.cache.stats.hits == 0

    def test_blocking_writes_return_results(self, service) -> None:
        count = len(service)
        record = Record(20_000, (5.0, 6.0, 7.0), ("flu",))
        service.insert(record)
        assert len(service) == count + 1
        removed = service.delete(record.rid, record.point)
        assert removed.rid == record.rid
        assert len(service) == count

    def test_update_moves_a_record(self, service) -> None:
        record = Record(30_000, (1.0, 1.0, 1.0), ("flu",))
        service.insert(record)
        moved = Record(record.rid, (90.0, 90.0, 90.0), record.sensitive)
        replaced = service.update(record.rid, record.point, moved)
        assert replaced.point == record.point
        service.delete(record.rid, moved.point)  # it lives at the new point

    def test_barrier_waits_for_queued_writes(self, service) -> None:
        count = len(service)
        futures = [
            service.submit_insert(
                Record(40_000 + i, (float(i % 90), 3.0, 4.0), ("flu",))
            )
            for i in range(50)
        ]
        service.barrier()
        assert all(future.done() for future in futures)
        assert len(service) == count + 50

    def test_failed_write_resolves_the_future_with_the_error(self, service) -> None:
        future = service.submit_delete(999_999, (0.0, 0.0, 0.0))
        with pytest.raises(KeyError):
            future.result(timeout=10)

    def test_failed_write_goes_stale_rather_than_serve_cached(self, service) -> None:
        before = service.release(10)
        with pytest.raises(KeyError):
            service.delete(999_999, (0.0, 0.0, 0.0))
        after = service.release(10)
        assert after is not before  # epoch bumped even though the op failed
        assert after.digest == before.digest

    def test_closed_service_rejects_reads_and_writes(self, schema3) -> None:
        table = Table(schema3, random_records(100, seed=9))
        service = AnonymizerService(RTreeAnonymizer(table, base_k=5))
        service.load(table)
        service.close()
        service.close()  # idempotent
        with pytest.raises(ServiceClosedError):
            service.release(10)
        with pytest.raises(ServiceClosedError):
            service.submit_insert(Record(1, (1.0, 2.0, 3.0), ("flu",)))

    def test_close_applies_writes_submitted_before_it(self, schema3) -> None:
        table = Table(schema3, random_records(100, seed=10))
        service = AnonymizerService(RTreeAnonymizer(table, base_k=5))
        service.load(table)
        futures = [
            service.submit_insert(
                Record(50_000 + i, (float(i), 2.0, 3.0), ("flu",))
            )
            for i in range(20)
        ]
        service.close()
        assert all(future.done() for future in futures)
        assert len(service) == 120

    def test_journal_replay_reproduces_the_release(self, schema3) -> None:
        records = random_records(400, seed=11)
        table = Table(schema3, records)
        engine = RTreeAnonymizer(table, base_k=5)
        with AnonymizerService(engine, ServiceConfig(journal=True)) as service:
            service.load(table)
            for i in range(30):
                service.insert(
                    Record(60_000 + i, (float(3 * i % 100), 4.0, 5.0), ("flu",))
                )
            victim = records[17]
            service.delete(victim.rid, victim.point)
            service.barrier()
            digest = service.release(10).digest
            journal = service.journal
        replayed = _replay(Table(schema3, ()), journal)
        assert release_digest(replayed.anonymize(10)) == digest

    def test_journal_requires_opt_in(self, schema3) -> None:
        table = Table(schema3, random_records(50, seed=12))
        with AnonymizerService(RTreeAnonymizer(table, base_k=5)) as service:
            with pytest.raises(ValueError, match="journal"):
                service.journal


class TestServiceDurability:
    def test_queued_writes_are_logged_and_recoverable(self, schema3, tmp_path) -> None:
        table = Table(schema3, random_records(300, seed=13))
        engine = RTreeAnonymizer(
            table, base_k=5, durability=DurabilityConfig(tmp_path / "state")
        )
        with AnonymizerService(engine) as service:
            service.load(table)
            service.engine.checkpoint()
            for i in range(40):
                service.insert(
                    Record(70_000 + i, (float(2 * i % 100), 8.0, 9.0), ("flu",))
                )
            service.barrier()
            digest = service.release(10).digest
        outcome = recover(tmp_path / "state")
        recovered = release_digest(outcome.anonymizer.anonymize(10))
        outcome.anonymizer.close()
        assert recovered == digest


class TestApiFacade:
    def test_open_serve_returns_a_service(self, schema3) -> None:
        table = Table(schema3, random_records(200, seed=14))
        with api.open(table, base_k=5, serve=True) as service:
            assert isinstance(service, AnonymizerService)
            service.load(table)
            snapshot = service.release(10)
            assert snapshot.k_satisfied
            assert snapshot.record_count == 200

    def test_serve_shorthand(self, schema3) -> None:
        table = Table(schema3, random_records(150, seed=15))
        with api.serve(
            table, base_k=5, service_config=ServiceConfig(max_batch=8)
        ) as service:
            assert service.config.max_batch == 8
            service.load(table)
            assert service.release(10).record_count == 150

    def test_service_config_without_serve_is_rejected(self, schema3) -> None:
        with pytest.raises(ValueError, match="serve=True"):
            api.open(
                Table(schema3, ()), service_config=ServiceConfig()
            )


def _replay(empty_table: Table, journal) -> RTreeAnonymizer:
    """Apply a service journal to a fresh engine (the differential oracle)."""
    engine = RTreeAnonymizer(empty_table, base_k=5)
    for entry in journal:
        kind = entry[0]
        if kind == "bulk_load":
            engine.bulk_load(entry[1])
        elif kind == "bulk_load_file":
            engine.bulk_load_file(
                entry[1], batch_size=entry[2], first_rid=entry[3], workers=entry[4]
            )
        elif kind == "insert_batch":
            engine.insert_batch(entry[1])
        elif kind == "delete":
            engine.delete(entry[1], entry[2])
        elif kind == "update":
            engine.update(entry[1], entry[2], entry[3])
        elif kind != "failed":
            raise AssertionError(f"unknown journal entry {kind!r}")
    return engine
