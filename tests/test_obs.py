"""The observability subsystem: registry, sinks, and the built-in hooks."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.core.anonymizer import RTreeAnonymizer
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.index.buffer_tree import BufferTreeLoader
from repro.index.rtree import RPlusTree
from repro.obs import (
    DEFAULT_COUNTERS,
    InMemorySink,
    JsonLinesSink,
    MetricsRegistry,
    TableSink,
)
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import PageFile
from tests.conftest import random_records


@pytest.fixture(autouse=True)
def _clean_global_registry():
    """Tests toggle the process-wide OBS; always leave it off and empty."""
    yield
    obs.disable()
    obs.reset()


class TestRegistry:
    def test_disabled_by_default(self) -> None:
        registry = MetricsRegistry()
        assert not registry.enabled

    def test_counters_and_gauges(self) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.count("a.b")
        registry.count("a.b", 4)
        registry.gauge("level", 3.5)
        assert registry.counter_value("a.b") == 5
        assert registry.gauge_value("level") == 3.5
        assert registry.counter_value("never.touched") == 0

    def test_histogram_aggregates(self) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        for value in (1, 2, 3, 10):
            registry.observe("sizes", value)
        histogram = registry.histogram("sizes")
        assert histogram is not None
        assert histogram.count == 4
        assert histogram.minimum == 1
        assert histogram.maximum == 10
        assert histogram.mean == pytest.approx(4.0)

    def test_span_nesting_builds_paths(self) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        with registry.span("outer"):
            with registry.span("inner"):
                pass
            with registry.span("inner"):
                pass
        snapshot = registry.snapshot()
        spans = snapshot["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer/inner"]["count"] == 2
        assert spans["outer"]["total_s"] >= spans["outer/inner"]["total_s"]

    def test_disabled_span_is_noop(self) -> None:
        registry = MetricsRegistry()
        with registry.span("anything"):
            pass
        assert registry.snapshot()["spans"] == {}

    def test_enable_declares_default_schema(self) -> None:
        registry = MetricsRegistry()
        registry.enable()
        counters = registry.snapshot()["counters"]
        for name in DEFAULT_COUNTERS:
            assert name in counters and counters[name] == 0

    def test_reset_clears_everything(self) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.count("x")
        registry.observe("h", 1)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}

    def test_render_table_mentions_collected_names(self) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.count("rtree.leaf_splits", 7)
        registry.observe("depth", 2)
        with registry.span("load"):
            pass
        rendering = registry.render_table()
        assert "rtree.leaf_splits" in rendering
        assert "depth" in rendering
        assert "load" in rendering

    def test_snapshot_is_json_serializable(self) -> None:
        registry = MetricsRegistry()
        registry.enable()
        registry.count("x", 3)
        registry.observe("h", 5)
        with registry.span("s"):
            pass
        json.dumps(registry.snapshot("labelled"))

    def test_snapshot_carries_environment_block(self) -> None:
        import platform

        registry = MetricsRegistry()
        environment = registry.snapshot()["environment"]
        assert environment["python"] == platform.python_version()
        assert environment["timestamp"]
        # git_revision may be None outside a repo, but the key must exist.
        assert "git_revision" in environment

    def test_render_table_and_table_sink_share_one_renderer(self) -> None:
        import io

        from repro.obs.render import render_snapshot

        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.count("x", 2)
        snapshot = registry.snapshot()
        stream = io.StringIO()
        TableSink(stream).emit(snapshot)
        assert render_snapshot(snapshot) + "\n" == stream.getvalue()


class TestQuantileSketch:
    def test_percentiles_of_known_distribution(self) -> None:
        from repro.obs.registry import Histogram

        histogram = Histogram()
        for value in range(1, 101):  # 1..100, uniform
            histogram.observe(float(value))
        # The log-bucket sketch promises ~4.4% relative error.
        assert histogram.percentile(0.5) == pytest.approx(50, rel=0.05)
        assert histogram.percentile(0.9) == pytest.approx(90, rel=0.05)
        assert histogram.percentile(0.99) == pytest.approx(99, rel=0.05)
        # Extremes clamp to the exactly tracked min/max.
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(1.0) == 100.0

    def test_sub_second_latencies_resolve(self) -> None:
        from repro.obs.registry import Histogram

        histogram = Histogram()
        for value in (0.0001, 0.001, 0.01, 0.1):
            histogram.observe(value)
        assert histogram.percentile(0.25) == pytest.approx(0.0001, rel=0.05)
        assert histogram.percentile(1.0) == pytest.approx(0.1)

    def test_empty_histogram_is_zero(self) -> None:
        from repro.obs.registry import Histogram

        assert Histogram().percentile(0.5) == 0.0

    def test_zeros_are_tallied_not_bucketed(self) -> None:
        from repro.obs.registry import Histogram

        histogram = Histogram()
        histogram.observe(0.0)
        histogram.observe(0.0)
        histogram.observe(8.0)
        assert histogram.zeros == 2
        assert histogram.percentile(0.5) == 0.0
        assert histogram.percentile(1.0) == 8.0

    def test_rejects_out_of_range_quantile(self) -> None:
        from repro.obs.registry import Histogram

        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_as_dict_carries_percentiles_and_buckets(self) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        for value in (1.0, 2.0, 4.0):
            registry.observe("h", value)
        h = registry.snapshot()["histograms"]["h"]
        assert {"p50", "p90", "p99"} <= h.keys()
        assert sum(h["buckets"].values()) == 3

    def test_registry_percentile_shortcut(self) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.observe("h", 4.0)
        assert registry.percentile("h", 0.5) == pytest.approx(4.0, rel=0.05)
        assert registry.percentile("missing", 0.5) == 0.0


class TestDeclaredMetrics:
    def test_enable_declares_gauges_and_histograms_too(self) -> None:
        from repro.obs import DEFAULT_GAUGES
        from repro.obs.registry import DEFAULT_HISTOGRAMS

        registry = MetricsRegistry()
        registry.enable()
        snapshot = registry.snapshot()
        for name in DEFAULT_GAUGES:
            assert snapshot["gauges"][name] == 0.0
        for name in DEFAULT_HISTOGRAMS:
            assert snapshot["histograms"][name]["count"] == 0

    def test_undeclared_flags_typo_names(self) -> None:
        registry = MetricsRegistry()
        registry.enable()
        registry.count("serve.cache_hits")  # declared: fine
        registry.count("serve.cache_hist")  # the typo this check exists for
        registry.gauge("serve.queue_dpeth", 1)
        registry.observe("serve.commit_secs", 0.1)
        assert registry.undeclared() == {
            "counters": ["serve.cache_hist"],
            "gauges": ["serve.queue_dpeth"],
            "histograms": ["serve.commit_secs"],
        }

    def test_reset_clears_declarations(self) -> None:
        registry = MetricsRegistry()
        registry.enable()
        registry.reset()
        registry.count("serve.cache_hits")
        assert registry.undeclared()["counters"] == ["serve.cache_hits"]


@pytest.mark.stress
class TestRegistryThreadSafety:
    def test_concurrent_counts_are_exact(self) -> None:
        """8 threads hammer one registry; nothing may tear or be lost."""
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        threads, per_thread = 8, 5_000
        start = threading.Barrier(threads)

        def hammer(index: int) -> None:
            start.wait()
            for step in range(per_thread):
                registry.count("shared")
                registry.count(f"own.{index}")
                registry.observe("latency", float(step % 7) + 0.5)
                registry.gauge("level", float(index))
                if step % 100 == 0:
                    registry.snapshot()  # concurrent reads must not tear

        workers = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.counter_value("shared") == threads * per_thread
        for index in range(threads):
            assert registry.counter_value(f"own.{index}") == per_thread
        histogram = registry.histogram("latency")
        assert histogram is not None
        assert histogram.count == threads * per_thread
        assert sum(histogram.buckets.values()) == threads * per_thread

    def test_concurrent_spans_keep_consistent_aggregates(self) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        threads, per_thread = 8, 500

        def spin() -> None:
            for _ in range(per_thread):
                with registry.span("outer"):
                    with registry.span("inner"):
                        pass

        workers = [threading.Thread(target=spin) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        spans = registry.snapshot()["spans"]
        total = threads * per_thread
        # Interleaved stacks may produce mixed paths, but no event is lost:
        # every outer and inner exit lands in exactly one path aggregate.
        assert sum(a["count"] for p, a in spans.items() if p.split("/")[-1] == "outer") == total
        assert sum(a["count"] for p, a in spans.items() if p.split("/")[-1] == "inner") == total


class TestRenderEdgeCases:
    def test_empty_snapshot_renders_placeholder(self) -> None:
        from repro.obs.render import render_snapshot

        assert render_snapshot({}) == "(no metrics collected)"
        assert render_snapshot({"label": "x"}) == "(no metrics collected)"

    def test_zero_count_histogram_renders_zero_min_max(self) -> None:
        from repro.obs.render import render_snapshot

        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.declare(histograms=("empty.hist",))
        rendering = render_snapshot(registry.snapshot())
        assert "empty.hist" in rendering
        assert "min=0" in rendering and "max=0" in rendering
        assert "inf" not in rendering

    def test_histogram_row_without_percentiles_still_renders(self) -> None:
        # Snapshots stored before the quantile sketch lack p50/p90/p99.
        from repro.obs.render import render_snapshot

        old = {
            "histograms": {
                "h": {"count": 1, "mean": 2.0, "min": 2.0, "max": 2.0}
            }
        }
        rendering = render_snapshot(old)
        assert "count=1" in rendering
        assert "p50" not in rendering

    def test_display_width_counts_east_asian_wide_as_two(self) -> None:
        from repro.obs.render import display_width

        assert display_width("abc") == 3
        assert display_width("データ") == 6
        assert display_width("é") == 1  # combining accent is zero-width

    def test_unicode_names_align_by_display_width(self) -> None:
        from repro.obs.render import display_width, render_snapshot

        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.count("データセット.rows", 1)
        registry.count("plain.rows", 2)
        lines = render_snapshot(registry.snapshot()).splitlines()
        start = lines.index("== counters ==") + 1
        rows = lines[start : start + 2]
        # The value column starts at the same *terminal cell* in each row,
        # even though the wide-character name has fewer codepoints.
        prefix_cells = {
            display_width(row[: len(row) - len(row.split()[-1])])
            for row in rows
        }
        assert len(prefix_cells) == 1


class TestSinks:
    def test_in_memory_sink(self) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.count("x")
        sink = InMemorySink()
        registry.emit(sink, label="first")
        registry.count("x")
        registry.emit(sink, label="second")
        assert len(sink.snapshots) == 2
        assert sink.latest["label"] == "second"
        assert sink.latest["counters"]["x"] == 2

    def test_jsonl_sink_appends_lines(self, tmp_path) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.count("x", 9)
        sink = JsonLinesSink(tmp_path / "metrics.jsonl")
        registry.emit(sink, label="a")
        registry.emit(sink, label="b")
        lines = (tmp_path / "metrics.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["label"] == "a"
        assert first["counters"]["x"] == 9

    def test_jsonl_sink_holds_one_handle_and_closes(self, tmp_path) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.count("x")
        sink = JsonLinesSink(tmp_path / "metrics.jsonl")
        assert not sink.closed
        registry.emit(sink)
        # Each emit is flushed, so the line is durable before close().
        assert (tmp_path / "metrics.jsonl").read_text().count("\n") == 1
        sink.close()
        assert sink.closed
        sink.close()  # idempotent

    def test_jsonl_sink_rejects_emit_after_close(self, tmp_path) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        sink = JsonLinesSink(tmp_path / "metrics.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            registry.emit(sink)

    def test_jsonl_sink_context_manager_closes(self, tmp_path) -> None:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        with JsonLinesSink(tmp_path / "metrics.jsonl") as sink:
            registry.emit(sink)
        assert sink.closed

    def test_jsonl_sink_unwritable_path_fails_at_construction(
        self, tmp_path
    ) -> None:
        # The target's parent is a *file*, so the sink cannot be opened:
        # the failure must surface when the sink is built, not on a later
        # emit deep inside an instrumented run.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(OSError):
            JsonLinesSink(blocker / "metrics.jsonl")

    def test_table_sink_writes_stream(self) -> None:
        import io

        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.count("pool.hits", 3)
        registry.observe("depth", 1)
        with registry.span("load"):
            pass
        stream = io.StringIO()
        registry.emit(TableSink(stream), label="run")
        text = stream.getvalue()
        assert "pool.hits" in text
        assert "depth" in text
        assert "load" in text
        assert "run" in text


class TestBuiltInHooks:
    def test_disabled_hooks_collect_nothing(self) -> None:
        tree = RPlusTree(dimensions=3, k=3)
        for record in random_records(100, seed=4):
            tree.insert(record)
        assert obs.snapshot()["counters"] == {}

    def test_tree_hooks(self) -> None:
        obs.enable()
        tree = RPlusTree(dimensions=3, k=3)
        records = random_records(200, seed=5)
        for record in records:
            tree.insert(record)
        tree.delete(records[0].rid, records[0].point)
        snapshot = obs.snapshot()
        counters = snapshot["counters"]
        assert counters["rtree.inserts"] >= 200
        assert counters["rtree.leaf_splits"] > 0
        assert counters["rtree.deletes"] == 1
        depth = snapshot["histograms"]["rtree.routing_depth"]
        assert depth["count"] >= 200
        assert depth["max"] >= 1

    def test_loader_and_storage_hooks(self) -> None:
        from repro.index.leaf_store import PagedLeafStore

        obs.enable()
        pagefile: PageFile[Record] = PageFile(page_bytes=512, record_bytes=36)
        pool: BufferPool[Record] = BufferPool(pagefile, 8 * 512)
        tree = RPlusTree(dimensions=3, k=3, leaf_store=PagedLeafStore(pool))
        loader = BufferTreeLoader(tree, pool=pool)
        consumed = loader.load(random_records(600, seed=6))
        pool.flush()
        assert consumed == 600
        counters = obs.snapshot()["counters"]
        assert counters["buffer_tree.flushes"] > 0
        assert counters["page.reads"] > 0
        assert counters["page.writes"] > 0
        assert counters["pool.hits"] + counters["pool.misses"] > 0
        # The mirrored counts agree with the pagefile's own ledger.
        assert counters["page.writes"] == pagefile.stats.writes

    def test_anonymizer_release_hooks(self, medium_table: Table) -> None:
        anonymizer = RTreeAnonymizer(medium_table, base_k=5)
        anonymizer.bulk_load(medium_table)
        obs.enable()
        release = anonymizer.anonymize(10)
        snapshot = obs.snapshot()
        assert snapshot["counters"]["anonymizer.releases"] == 1
        assert snapshot["counters"]["anonymizer.partitions"] == len(
            release.partitions
        )
        assert "anonymizer.anonymize" in snapshot["spans"]

    def test_bulk_load_span_nests_loader_spans(self, medium_table: Table) -> None:
        obs.enable()
        anonymizer = RTreeAnonymizer(medium_table, base_k=5)
        anonymizer.bulk_load(medium_table)
        spans = obs.snapshot()["spans"]
        assert "anonymizer.bulk_load" in spans
        assert "anonymizer.bulk_load/buffer_tree.load" in spans
        assert (
            "anonymizer.bulk_load/buffer_tree.load/buffer_tree.drain" in spans
        )
