"""The R+-tree: inserts, deletes, searches, and the structural invariants.

The invariant checker (:meth:`RPlusTree.check_invariants`) verifies record
counts, uniform leaf depth, parent pointers, fanout bounds, the k-occupancy
floor, MBR exactness and cut separation (disjoint sibling regions), so
most tests reduce to "do operations, then check".
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.record import Record
from repro.geometry.box import Box
from repro.index.rtree import RPlusTree
from tests.conftest import random_records


def fresh_tree(k: int = 3, **kwargs: object) -> RPlusTree:
    return RPlusTree(dimensions=3, k=k, domain_extents=(100.0,) * 3, **kwargs)  # type: ignore[arg-type]


class TestConstruction:
    def test_parameter_validation(self) -> None:
        with pytest.raises(ValueError):
            RPlusTree(dimensions=0, k=3)
        with pytest.raises(ValueError):
            RPlusTree(dimensions=2, k=0)
        with pytest.raises(ValueError):
            RPlusTree(dimensions=2, k=3, capacity_factor=1)
        with pytest.raises(ValueError):
            RPlusTree(dimensions=2, k=3, max_fanout=1)
        with pytest.raises(ValueError):
            RPlusTree(dimensions=2, k=5, leaf_capacity=8)
        with pytest.raises(ValueError):
            RPlusTree(dimensions=2, k=3, domain_extents=(1.0,))

    def test_empty_tree(self) -> None:
        tree = fresh_tree()
        assert len(tree) == 0
        assert tree.height == -1
        assert tree.leaves() == []
        tree.check_invariants()

    def test_wrong_dimensionality_rejected(self) -> None:
        tree = fresh_tree()
        with pytest.raises(ValueError):
            tree.insert(Record(0, (1.0, 2.0)))


class TestInsertion:
    def test_small_insert_stays_root_leaf(self) -> None:
        tree = fresh_tree(k=3)
        for record in random_records(5, seed=0):
            tree.insert(record)
        assert tree.height == 0
        assert len(tree) == 5
        tree.check_invariants()

    def test_growth_keeps_invariants(self) -> None:
        tree = fresh_tree(k=3)
        for record in random_records(1_000, seed=1):
            tree.insert(record)
        tree.check_invariants()
        assert len(tree) == 1_000
        assert tree.height >= 2

    def test_occupancy_floor(self) -> None:
        tree = fresh_tree(k=4)
        for record in random_records(500, seed=2):
            tree.insert(record)
        assert all(len(leaf.records) >= 4 for leaf in tree.leaves())

    def test_duplicate_points_allowed(self) -> None:
        tree = fresh_tree(k=2)
        for rid in range(50):
            tree.insert(Record(rid, (5.0, 5.0, 5.0)))
        # One over-full unsplittable leaf: legal (privacy-safe).
        tree.check_invariants()
        assert len(tree.leaves()) == 1

    def test_heavy_duplicates_split_where_possible(self) -> None:
        tree = fresh_tree(k=2)
        rid = 0
        for value in (1.0, 9.0):
            for _ in range(30):
                tree.insert(Record(rid, (value, 5.0, 5.0)))
                rid += 1
        tree.check_invariants()
        assert len(tree.leaves()) == 2

    def test_bulk_mode_defers_then_restores(self) -> None:
        tree = fresh_tree(k=3)
        tree.begin_bulk(trigger=500)
        assert tree.in_bulk_mode
        for record in random_records(400, seed=3):
            tree.insert(record)
        # Deferred: everything may still sit in one fat leaf.
        assert any(len(leaf.records) > tree.leaf_capacity for leaf in tree.leaves())
        tree.finish_bulk()
        assert not tree.in_bulk_mode
        tree.check_invariants()

    def test_bulk_insert_descending_from_root(self) -> None:
        tree = fresh_tree(k=3)
        records = random_records(300, seed=4)
        for record in records[:50]:
            tree.insert(record)
        assert tree.root is not None
        tree.bulk_insert_descending(tree.root, records[50:])
        assert len(tree) == 300
        tree.check_invariants()


class TestSearch:
    def test_search_matches_linear_scan(self) -> None:
        records = random_records(800, seed=5)
        tree = fresh_tree(k=3)
        for record in records:
            tree.insert(record)
        rng = random.Random(6)
        for _ in range(25):
            lows = tuple(float(rng.randint(0, 80)) for _ in range(3))
            highs = tuple(low + rng.randint(0, 40) for low in lows)
            box = Box(lows, highs)
            expected = sorted(
                r.rid for r in records if box.contains_point(r.point)
            )
            found = sorted(r.rid for r in tree.search(box))
            assert found == expected

    def test_search_empty_tree(self) -> None:
        assert fresh_tree().search(Box((0.0,) * 3, (9.0,) * 3)) == []

    def test_locate_leaf_contains_point_region(self) -> None:
        records = random_records(400, seed=7)
        tree = fresh_tree(k=3)
        for record in records:
            tree.insert(record)
        for record in records[::37]:
            leaf = tree.locate_leaf(record.point)
            assert leaf is not None
            assert any(r.rid == record.rid for r in leaf.records)

    def test_matching_leaves_prune_by_mbr(self) -> None:
        """MBRs exclude leaves whose *regions* intersect but data does not —
        the §2.3 precision argument."""
        tree = fresh_tree(k=2)
        rid = 0
        for x in (0.0, 1.0, 98.0, 99.0):
            for y in (0.0, 1.0):
                tree.insert(Record(rid, (x, y, 50.0)))
                rid += 1
        # Query the empty middle band: region-wise it overlaps someone's
        # region (regions tile the domain), but no MBR reaches it.
        matches = tree.matching_leaves(Box((40.0, 0.0, 0.0), (60.0, 99.0, 99.0)))
        assert matches == []


class TestDeletion:
    def test_delete_missing_raises(self) -> None:
        tree = fresh_tree()
        with pytest.raises(KeyError):
            tree.delete(0, (1.0, 1.0, 1.0))
        tree.insert(Record(1, (1.0, 1.0, 1.0)))
        with pytest.raises(KeyError):
            tree.delete(99, (1.0, 1.0, 1.0))

    def test_delete_returns_record(self) -> None:
        tree = fresh_tree()
        record = Record(7, (1.0, 2.0, 3.0), ("flu",))
        tree.insert(record)
        assert tree.delete(7, record.point) == record
        assert len(tree) == 0

    def test_delete_preserves_invariants(self) -> None:
        records = random_records(600, seed=8)
        tree = fresh_tree(k=3)
        for record in records:
            tree.insert(record)
        rng = random.Random(9)
        doomed = rng.sample(records, 300)
        for record in doomed:
            tree.delete(record.rid, record.point)
        tree.check_invariants()
        assert len(tree) == 300
        surviving = {r.rid for r in records} - {r.rid for r in doomed}
        assert {r.rid for leaf in tree.leaves() for r in leaf.records} == surviving

    def test_drain_to_empty(self) -> None:
        records = random_records(100, seed=10)
        tree = fresh_tree(k=3)
        for record in records:
            tree.insert(record)
        for record in records:
            tree.delete(record.rid, record.point)
        assert len(tree) == 0
        tree.check_invariants()

    def test_failed_orphan_reinsert_loses_no_records(self) -> None:
        # Regression: the underflow path dissolves the leaf and decrements
        # the count *before* reinserting the orphans; an insert that raised
        # partway used to vanish the remaining orphans silently.
        records = random_records(120, seed=21)
        tree = fresh_tree(k=3)
        for record in records:
            tree.insert(record)
        leaf = next(
            candidate
            for candidate in tree.leaves()
            if candidate is not tree.root and len(candidate.records) == 3
        )
        victim = leaf.records[0]

        def failing_insert(record: Record) -> None:
            raise OSError("injected insert failure")

        tree.insert = failing_insert  # type: ignore[method-assign]
        try:
            with pytest.raises(OSError, match="injected"):
                tree.delete(victim.rid, victim.point)
        finally:
            del tree.insert
        # The delete raised, so the tree must hold *everything* it held
        # before the call — the orphans and the victim alike.
        assert len(tree) == len(records)
        surviving = {r.rid for leaf in tree.leaves() for r in leaf.records}
        assert surviving == {r.rid for r in records}

    def test_failed_orphan_reinsert_partway_restores_remainder(self) -> None:
        # The second reinsert fails: the first orphan stays where the real
        # insert put it, the rest (and the victim) come back via the
        # fail-safe restore path.
        records = random_records(120, seed=22)
        tree = fresh_tree(k=3)
        for record in records:
            tree.insert(record)
        leaf = min(
            (c for c in tree.leaves() if c is not tree.root),
            key=lambda c: len(c.records),
        )
        while len(leaf.records) > 3:  # shave down to the k-floor first
            doomed = leaf.records[-1]
            tree.delete(doomed.rid, doomed.point)
            records = [r for r in records if r.rid != doomed.rid]
        victim = leaf.records[0]
        real_insert = tree.insert
        calls = {"count": 0}

        def flaky_insert(record: Record) -> None:
            calls["count"] += 1
            if calls["count"] >= 2:
                raise OSError("injected insert failure")
            real_insert(record)

        tree.insert = flaky_insert  # type: ignore[method-assign]
        try:
            with pytest.raises(OSError, match="injected"):
                tree.delete(victim.rid, victim.point)
        finally:
            del tree.insert
        assert len(tree) == len(records)
        surviving = {r.rid for leaf in tree.leaves() for r in leaf.records}
        assert surviving == {r.rid for r in records}

    def test_height_shrinks_as_tree_drains(self) -> None:
        records = random_records(1_000, seed=11)
        tree = fresh_tree(k=3)
        for record in records:
            tree.insert(record)
        tall = tree.height
        assert tall >= 2
        for record in records[:996]:
            tree.delete(record.rid, record.point)
        tree.check_invariants()
        # Four records cannot fill two k=3 leaves, so the tree has one leaf
        # and the root-collapse path must have shrunk it to a root leaf.
        assert tree.height == 0


class TestTraversal:
    def test_leaf_order_is_stable_and_complete(self) -> None:
        tree = fresh_tree(k=3)
        records = random_records(500, seed=12)
        for record in records:
            tree.insert(record)
        leaves = tree.leaves()
        assert leaves == tree.leaves()  # deterministic
        rids = [r.rid for leaf in leaves for r in leaf.records]
        assert sorted(rids) == sorted(r.rid for r in records)

    def test_nodes_at_level(self) -> None:
        tree = fresh_tree(k=3)
        for record in random_records(500, seed=13):
            tree.insert(record)
        assert tree.nodes_at_level(0) == tree.leaves()
        assert tree.nodes_at_level(tree.height) == [tree.root]
        assert tree.nodes_at_level(tree.height + 1) == []
        for level in range(tree.height + 1):
            nodes = tree.nodes_at_level(level)
            assert sum(node.record_count() for node in nodes) == len(tree)

    def test_leaf_groups(self) -> None:
        tree = fresh_tree(k=3)
        for record in random_records(100, seed=14):
            tree.insert(record)
        groups = tree.leaf_groups()
        assert sum(len(g) for g in groups) == 100


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 40), st.integers(0, 40)),
        min_size=1,
        max_size=250,
    ),
    st.data(),
)
def test_random_operation_sequences_maintain_invariants(points, data) -> None:
    """Property: any interleaving of inserts and deletes keeps every invariant."""
    tree = fresh_tree(k=2)
    alive: dict[int, Record] = {}
    for rid, point in enumerate(points):
        record = Record(rid, tuple(float(v) for v in point))
        tree.insert(record)
        alive[rid] = record
        # Occasionally delete a random survivor.
        if alive and data.draw(st.integers(0, 3)) == 0:
            victim_rid = data.draw(st.sampled_from(sorted(alive)))
            victim = alive.pop(victim_rid)
            tree.delete(victim.rid, victim.point)
    tree.check_invariants()
    assert len(tree) == len(alive)
    remaining = {r.rid for leaf in tree.leaves() for r in leaf.records}
    assert remaining == set(alive)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30), st.integers(0, 30)),
        min_size=8,
        max_size=200,
    ),
    st.randoms(use_true_random=False),
)
def test_underflow_dissolve_preserves_count_and_invariants(points, rng) -> None:
    """Property: every delete — including underflow dissolves that reinsert
    orphans — leaves ``len(tree)`` exact and every invariant intact."""
    tree = fresh_tree(k=3)
    alive: dict[int, Record] = {}
    for rid, point in enumerate(points):
        record = Record(rid, tuple(float(v) for v in point))
        tree.insert(record)
        alive[rid] = record
    doomed = rng.sample(sorted(alive), len(alive) // 2)
    for rid in doomed:
        victim = alive.pop(rid)
        tree.delete(victim.rid, victim.point)
        assert len(tree) == len(alive)
    tree.check_invariants()
    assert {r.rid for leaf in tree.leaves() for r in leaf.records} == set(alive)


class TestUpdateAndStats:
    def test_update_moves_record(self) -> None:
        tree = fresh_tree(k=3)
        records = random_records(300, seed=20)
        for record in records:
            tree.insert(record)
        victim = records[42]
        replacement = Record(victim.rid, (99.0, 99.0, 99.0), victim.sensitive)
        removed = tree.update(victim.rid, victim.point, replacement)
        assert removed.rid == victim.rid
        assert len(tree) == 300
        tree.check_invariants()
        leaf = tree.locate_leaf((99.0, 99.0, 99.0))
        assert leaf is not None
        assert any(r.rid == victim.rid for r in leaf.records)

    def test_update_missing_raises(self) -> None:
        tree = fresh_tree(k=3)
        for record in random_records(50, seed=21):
            tree.insert(record)
        with pytest.raises(KeyError):
            tree.update(9_999, (1.0, 1.0, 1.0), Record(9_999, (2.0, 2.0, 2.0)))

    def test_update_with_wrong_dimensionality_keeps_old_record(self) -> None:
        """Regression: a bad replacement must not delete the original.

        ``update`` used to delete first and validate second, so a
        dimension-mismatched replacement silently dropped the old record.
        """
        tree = fresh_tree(k=3)
        records = random_records(300, seed=23)
        for record in records:
            tree.insert(record)
        victim = records[10]
        with pytest.raises(ValueError):
            tree.update(victim.rid, victim.point, Record(victim.rid, (1.0, 2.0)))
        assert len(tree) == 300
        leaf = tree.locate_leaf(victim.point)
        assert leaf is not None
        assert any(r.rid == victim.rid for r in leaf.records)
        tree.check_invariants()

    def test_update_reinserts_removed_record_when_insert_fails(
        self, monkeypatch
    ) -> None:
        """Regression: a failing insert rolls the delete back."""
        tree = fresh_tree(k=3)
        records = random_records(300, seed=24)
        for record in records:
            tree.insert(record)
        victim = records[77]
        replacement = Record(victim.rid, (50.0, 50.0, 50.0), victim.sensitive)

        real_insert = RPlusTree.insert
        failed = {"done": False}

        def failing_insert(self, record):  # noqa: ANN001
            # Fail only the replacement's first insert; orphan reinserts on
            # the delete path and the rollback itself must still work.
            if record is replacement and not failed["done"]:
                failed["done"] = True
                raise RuntimeError("simulated mid-update failure")
            return real_insert(self, record)

        monkeypatch.setattr(RPlusTree, "insert", failing_insert)
        with pytest.raises(RuntimeError):
            tree.update(victim.rid, victim.point, replacement)
        monkeypatch.undo()
        # The victim is back in the tree; nothing was lost.
        assert len(tree) == 300
        leaf = tree.locate_leaf(victim.point)
        assert leaf is not None
        assert any(r.rid == victim.rid for r in leaf.records)
        tree.check_invariants()

    def test_stats_consistency(self) -> None:
        tree = fresh_tree(k=3)
        for record in random_records(400, seed=22):
            tree.insert(record)
        stats = tree.stats()
        assert stats["records"] == 400
        assert stats["leaves"] == len(tree.leaves())
        assert stats["height"] == tree.height
        assert stats["leaf_occupancy_min"] >= 3
        assert sum(stats["nodes_per_level"].values()) >= stats["leaves"]
        assert 1.0 <= stats["mean_fanout"] <= tree.max_fanout

    def test_stats_empty_tree(self) -> None:
        stats = fresh_tree().stats()
        assert stats["records"] == 0
        assert stats["leaves"] == 0


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        ),
        min_size=1,
        max_size=150,
    )
)
def test_float_coordinates_maintain_invariants(points) -> None:
    """The tree is not integer-specific: arbitrary finite floats work."""
    tree = RPlusTree(dimensions=3, k=2, domain_extents=(2e6,) * 3)
    for rid, point in enumerate(points):
        tree.insert(Record(rid, point))
    tree.check_invariants()
    assert len(tree) == len(points)
