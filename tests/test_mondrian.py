"""The Mondrian top-down baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mondrian import MondrianAnonymizer, mondrian_anonymize
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.privacy.kanonymity import verify_release
from tests.conftest import random_records


class TestMondrian:
    def test_release_passes_audit(self, medium_table) -> None:
        for k in (5, 10, 30):
            release = mondrian_anonymize(medium_table, k)
            assert verify_release(release, medium_table, k) == []

    def test_strictness_no_partition_reaches_2k(self, medium_table) -> None:
        """Strict Mondrian keeps splitting while any dimension allows it:
        on data without heavy duplicates, no partition reaches 2k."""
        release = mondrian_anonymize(medium_table, 10)
        assert max(len(p) for p in release.partitions) < 20 + 5  # small slack

    def test_regions_are_disjoint(self, medium_table) -> None:
        release = mondrian_anonymize(medium_table, 10)
        boxes = [p.box for p in release.partitions]
        for i, a in enumerate(boxes):
            for b in boxes[i + 1 :]:
                overlap = a.intersection(b)
                assert overlap is None or overlap.area() == 0.0

    def test_regions_tile_the_domain(self, medium_table) -> None:
        release = mondrian_anonymize(medium_table, 10)
        domain = medium_table.domain_box()
        assert sum(p.box.area() for p in release.partitions) == pytest.approx(
            domain.area()
        )

    def test_deterministic(self, small_table) -> None:
        a = mondrian_anonymize(small_table, 5)
        b = mondrian_anonymize(small_table, 5)
        assert [p.rids() for p in a.partitions] == [p.rids() for p in b.partitions]

    def test_order_invariant(self, small_table, schema3) -> None:
        shuffled = small_table.sample(len(small_table), seed=9)
        a = mondrian_anonymize(small_table, 5)
        b = mondrian_anonymize(Table(schema3, shuffled.records), 5)
        assert sorted(map(sorted, (p.rids() for p in a.partitions))) == sorted(
            map(sorted, (p.rids() for p in b.partitions))
        )

    def test_duplicates_stay_whole(self, schema3) -> None:
        records = [Record(i, (5.0, 5.0, 5.0)) for i in range(40)]
        release = MondrianAnonymizer(Table(schema3, records)).anonymize(10)
        assert len(release.partitions) == 1

    def test_empty_table_rejected(self, schema3) -> None:
        with pytest.raises(ValueError):
            MondrianAnonymizer(Table(schema3))

    def test_k_larger_than_table_rejected(self, small_table) -> None:
        with pytest.raises(ValueError):
            mondrian_anonymize(small_table, len(small_table) + 1)

    def test_invalid_k_rejected(self, small_table) -> None:
        with pytest.raises(ValueError):
            mondrian_anonymize(small_table, 0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)),
            min_size=6,
            max_size=120,
        ),
        st.integers(2, 6),
    )
    def test_k_floor_property(self, points, k) -> None:
        from repro.dataset.schema import Attribute, Schema

        schema = Schema(
            (Attribute.numeric("x", 0, 50), Attribute.numeric("y", 0, 50))
        )
        table = Table.from_points(schema, [(float(a), float(b)) for a, b in points])
        if len(table) < k:
            return
        release = MondrianAnonymizer(table).anonymize(k)
        assert release.k_effective >= k
        assert release.record_count == len(table)
