"""Query machinery: §5.4 match semantics, counting, errors, buckets."""

from __future__ import annotations

import pytest

from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.query.accuracy import (
    QueryOutcome,
    average_error,
    bucket_by_selectivity,
    evaluate_workload,
)
from repro.query.ranges import (
    RangeQuery,
    count_anonymized,
    count_anonymized_bulk,
    count_original,
    count_original_bulk,
    estimate_anonymized,
)
from repro.query.workload import random_range_workload, single_attribute_workload
from tests.conftest import random_records


@pytest.fixture
def schema2() -> Schema:
    return Schema((Attribute.numeric("age", 0, 100), Attribute.numeric("zip", 0, 100)))


class TestMatchSemantics:
    def test_paper_examples(self, schema2) -> None:
        """The exact §5.4 examples: r=([40-50],[53710-53720]) matches
        Q=(45<=age<=55 and 53700<=zip<=53715); r=([30-35],...) does not."""
        query = RangeQuery(Box((45.0, 53_700.0), (55.0, 53_715.0)))
        matching = Box((40.0, 53_710.0), (50.0, 53_720.0))
        non_matching = Box((30.0, 53_700.0), (35.0, 53_715.0))
        assert query.matches_box(matching)
        assert not query.matches_box(non_matching)

    def test_point_semantics_closed(self, schema2) -> None:
        query = RangeQuery(Box((10.0, 10.0), (20.0, 20.0)))
        assert query.matches_point((10.0, 20.0))
        assert not query.matches_point((9.9, 15.0))


class TestCounting:
    def make_release(self, schema2) -> tuple[AnonymizedTable, Table]:
        groups = [
            [(5.0, 5.0), (10.0, 10.0)],
            [(50.0, 50.0), (55.0, 55.0), (60.0, 60.0)],
        ]
        rid = 0
        partitions = []
        original = Table(schema2)
        for group in groups:
            records = []
            for point in group:
                record = Record(rid, point)
                original.append(record)
                records.append(record)
                rid += 1
            partitions.append(
                Partition(tuple(records), Box.from_points(p for p in group))
            )
        return AnonymizedTable(schema2, partitions), original

    def test_count_original(self, schema2) -> None:
        release, original = self.make_release(schema2)
        query = RangeQuery(Box((0.0, 0.0), (20.0, 20.0)))
        assert count_original(query, original) == 2

    def test_count_anonymized_whole_partitions(self, schema2) -> None:
        release, _original = self.make_release(schema2)
        # Touches the first partition's box only -> its whole size counts.
        query = RangeQuery(Box((0.0, 0.0), (6.0, 6.0)))
        assert count_anonymized(query, release) == 2
        # Touches both boxes.
        query = RangeQuery(Box((8.0, 8.0), (52.0, 52.0)))
        assert count_anonymized(query, release) == 5

    def test_bulk_counts_match_scalar(self, schema2, medium_table) -> None:
        from repro.core.anonymizer import RTreeAnonymizer

        # A realistic release over the medium table.
        anonymizer = RTreeAnonymizer(medium_table, base_k=5)
        anonymizer.bulk_load(medium_table)
        release = anonymizer.anonymize(5)
        queries = random_range_workload(medium_table, 50, seed=4)
        bulk_orig = count_original_bulk(queries, medium_table)
        bulk_anon = count_anonymized_bulk(queries, release)
        for index, query in enumerate(queries):
            assert bulk_orig[index] == count_original(query, medium_table)
            assert bulk_anon[index] == count_anonymized(query, release)

    def test_bulk_counts_exact_beyond_float53(self) -> None:
        """Regression: sizes routed through float64 lose exactness at 2**53.

        ``2**53 + 1`` is not representable in float64, so the old
        float-dtype bulk path answered ``2**53`` while the scalar oracle
        answered ``2**53 + 1``.  Duck-typed partitions keep the test cheap
        (no materialized nine-quadrillion-record table).
        """

        class _HugePartition:
            def __init__(self, box: Box, size: int) -> None:
                self.box = box
                self._size = size

            def __len__(self) -> int:
                return self._size

        class _HugeTable:
            def __init__(self, partitions) -> None:
                self.partitions = partitions

        box = Box((0.0, 0.0), (10.0, 10.0))
        table = _HugeTable([_HugePartition(box, 2**53), _HugePartition(box, 1)])
        query = RangeQuery(Box((0.0, 0.0), (5.0, 5.0)))
        scalar = count_anonymized(query, table)
        assert scalar == 2**53 + 1
        assert count_anonymized_bulk([query], table)[0] == scalar

    def test_uniform_estimate(self, schema2) -> None:
        release, _ = self.make_release(schema2)
        # The §2.3 estimator: partition [50,60]^2 (discrete volume 11x11),
        # query covers [50,55] on both -> 6x6 cells of 11x11, 3 records.
        query = RangeQuery(Box((50.0, 50.0), (55.0, 55.0)))
        expected = 3 * (6 * 6) / (11 * 11)
        assert estimate_anonymized(query, release) == pytest.approx(expected)

    def test_uniform_estimate_degenerate_box(self, schema2) -> None:
        records = (Record(0, (5.0, 5.0)), Record(1, (5.0, 5.0)))
        release = AnonymizedTable(
            schema2, [Partition(records, Box((5.0, 5.0), (5.0, 5.0)))]
        )
        query = RangeQuery(Box((0.0, 0.0), (9.0, 9.0)))
        assert estimate_anonymized(query, release) == pytest.approx(2.0)


class TestWorkloads:
    def test_random_workload_always_matches_two_records(self, medium_table) -> None:
        queries = random_range_workload(medium_table, 100, seed=1)
        counts = count_original_bulk(queries, medium_table)
        assert (counts >= 2).all()  # bounds derive from two real records

    def test_single_attribute_workload_unbounded_elsewhere(self, medium_table) -> None:
        queries = single_attribute_workload(medium_table, "b", 50, seed=2)
        for query in queries:
            assert query.box.lows[0] == 0.0 and query.box.highs[0] == 100.0
            assert query.box.lows[2] == 0.0 and query.box.highs[2] == 100.0

    def test_random_workload_pair_sampled_without_replacement(self, schema3) -> None:
        """Regression: with-replacement sampling could draw one record twice.

        On a two-record table the old code drew a degenerate (r, r) pair
        with probability 1/2 per query, producing a point query matching a
        single record — 30 queries made a violation all but certain.
        """
        records = [
            Record(0, (0.0, 0.0, 0.0), ("x",)),
            Record(1, (100.0, 100.0, 100.0), ("y",)),
        ]
        table = Table(schema3, records)
        queries = random_range_workload(table, 30, seed=7)
        counts = count_original_bulk(queries, table)
        assert (counts >= 2).all()

    def test_single_attribute_workload_pair_without_replacement(
        self, schema3
    ) -> None:
        records = [
            Record(0, (0.0, 0.0, 0.0), ("x",)),
            Record(1, (100.0, 100.0, 100.0), ("y",)),
        ]
        table = Table(schema3, records)
        queries = single_attribute_workload(table, "a", 30, seed=7)
        counts = count_original_bulk(queries, table)
        assert (counts >= 2).all()

    def test_workloads_reproducible(self, medium_table) -> None:
        a = random_range_workload(medium_table, 20, seed=3)
        b = random_range_workload(medium_table, 20, seed=3)
        assert [q.box for q in a] == [q.box for q in b]

    def test_tiny_table_rejected(self, schema3) -> None:
        table = Table(schema3, random_records(1, seed=0))
        with pytest.raises(ValueError):
            random_range_workload(table, 5)
        with pytest.raises(ValueError):
            single_attribute_workload(table, "a", 5)


class TestAccuracy:
    def test_error_definition(self) -> None:
        outcome = QueryOutcome(
            RangeQuery(Box((0.0,), (1.0,))), original_count=10, anonymized_count=25
        )
        assert outcome.error == pytest.approx(1.5)

    def test_average_error(self) -> None:
        query = RangeQuery(Box((0.0,), (1.0,)))
        outcomes = [
            QueryOutcome(query, 10, 20),  # error 1.0
            QueryOutcome(query, 10, 40),  # error 3.0
        ]
        assert average_error(outcomes) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            average_error([])

    def test_anonymized_count_never_undercounts(self, medium_table) -> None:
        """Whole-partition counting over boxes that cover the data can only
        overcount, so every error is >= 0."""
        from repro.core.anonymizer import RTreeAnonymizer

        anonymizer = RTreeAnonymizer(medium_table, base_k=5)
        anonymizer.bulk_load(medium_table)
        release = anonymizer.anonymize(10)
        queries = random_range_workload(medium_table, 100, seed=5)
        outcomes = evaluate_workload(queries, release, medium_table)
        assert all(outcome.error >= 0 for outcome in outcomes)

    def test_precomputed_original_counts(self, medium_table) -> None:
        from repro.core.anonymizer import RTreeAnonymizer

        anonymizer = RTreeAnonymizer(medium_table, base_k=5)
        anonymizer.bulk_load(medium_table)
        release = anonymizer.anonymize(10)
        queries = random_range_workload(medium_table, 30, seed=6)
        counts = count_original_bulk(queries, medium_table).tolist()
        with_pre = evaluate_workload(queries, release, medium_table, counts)
        without = evaluate_workload(queries, release, medium_table)
        assert [o.error for o in with_pre] == [o.error for o in without]

    def test_buckets_cover_all_queries(self, medium_table) -> None:
        from repro.core.anonymizer import RTreeAnonymizer

        anonymizer = RTreeAnonymizer(medium_table, base_k=5)
        anonymizer.bulk_load(medium_table)
        release = anonymizer.anonymize(10)
        queries = random_range_workload(medium_table, 200, seed=7)
        outcomes = evaluate_workload(queries, release, medium_table)
        buckets = bucket_by_selectivity(outcomes, len(medium_table))
        assert sum(count for _band, count, _err in buckets) == len(outcomes)

    def test_buckets_invalid_table_size(self) -> None:
        with pytest.raises(ValueError):
            bucket_by_selectivity([], 0)

    def test_selectivity_is_a_fraction(self, medium_table) -> None:
        """Regression: ``selectivity`` used to return the raw original count."""
        from repro.core.anonymizer import RTreeAnonymizer

        anonymizer = RTreeAnonymizer(medium_table, base_k=5)
        anonymizer.bulk_load(medium_table)
        release = anonymizer.anonymize(10)
        queries = random_range_workload(medium_table, 50, seed=8)
        outcomes = evaluate_workload(queries, release, medium_table)
        for outcome in outcomes:
            assert 0.0 < outcome.selectivity <= 1.0
            assert outcome.selectivity == pytest.approx(
                outcome.original_count / len(medium_table)
            )

    def test_selectivity_without_table_size_raises(self) -> None:
        outcome = QueryOutcome(RangeQuery(Box((0.0,), (1.0,))), 10, 25)
        with pytest.raises(ValueError):
            outcome.selectivity
