"""The event tracer: ring buffer, span nesting, Chrome export, CLI wiring."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.core.anonymizer import RTreeAnonymizer
from repro.dataset.table import Table
from repro.obs import TRACE, Tracer, validate_chrome_trace
from repro.obs.trace import NULL_TRACE_SPAN

from tests.conftest import random_records


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    """Keep the process-wide tracer off between tests."""
    yield
    TRACE.disable()
    TRACE.reset()


class TestTracer:
    def test_disabled_by_default_and_span_is_shared_noop(self) -> None:
        tracer = Tracer()
        assert not tracer.enabled
        assert tracer.span("anything") is NULL_TRACE_SPAN
        with tracer.span("anything", "cat", key=1):
            pass
        assert len(tracer) == 0

    def test_span_records_event_with_timing(self) -> None:
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", "test", items=3):
            pass
        (event,) = tracer.events()
        assert event.name == "work"
        assert event.category == "test"
        assert event.args == {"items": 3}
        assert event.duration_us >= 0
        assert not event.is_instant

    def test_nested_spans_record_parent(self) -> None:
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            tracer.instant("ping")
        by_name = {event.name: event for event in tracer.events()}
        assert by_name["outer"].parent is None
        assert by_name["inner"].parent == "outer"
        assert by_name["ping"].parent == "outer"
        assert by_name["ping"].is_instant

    def test_ring_buffer_bounds_memory_and_counts_drops(self) -> None:
        tracer = Tracer(capacity=8)
        tracer.enable()
        for index in range(20):
            tracer.instant(f"event-{index}")
        assert len(tracer) == 8
        assert tracer.dropped == 12
        # The buffer keeps the most recent events.
        assert tracer.event_names() == {f"event-{index}" for index in range(12, 20)}

    def test_enable_can_resize_capacity(self) -> None:
        tracer = Tracer(capacity=4)
        tracer.enable(capacity=2)
        assert tracer.capacity == 2
        with pytest.raises(ValueError):
            tracer.enable(capacity=0)
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_reset_restarts_clock_and_empties_buffer(self) -> None:
        tracer = Tracer()
        tracer.enable()
        tracer.instant("before")
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        tracer.instant("after")
        assert tracer.event_names() == {"after"}


class TestChromeExport:
    def test_round_trip_through_json_validates(self, tmp_path) -> None:
        tracer = Tracer()
        tracer.enable()
        with tracer.span("load", "loader", records=10):
            tracer.instant("sweep", "loader", level=0)
        path = tracer.export_chrome(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []
        events = document["traceEvents"]
        assert {event["name"] for event in events} == {"load", "sweep"}
        complete = next(e for e in events if e["name"] == "load")
        assert complete["ph"] == "X"
        assert complete["dur"] >= 0
        assert complete["args"] == {"records": 10}
        instant = next(e for e in events if e["name"] == "sweep")
        assert instant["ph"] == "i"
        assert instant["args"] == {"level": 0, "parent": "load"}
        assert document["otherData"]["dropped"] == 0

    def test_export_to_stream(self) -> None:
        tracer = Tracer()
        tracer.enable()
        tracer.instant("only")
        stream = io.StringIO()
        assert tracer.export_chrome(stream) is None
        document = json.loads(stream.getvalue())
        assert validate_chrome_trace(document) == []

    def test_events_sorted_by_start_time(self) -> None:
        tracer = Tracer()
        tracer.enable()
        # The outer span finishes last but started first: export must
        # re-sort by start so the timeline reads left to right.
        with tracer.span("outer"):
            tracer.instant("early")
        timestamps = [
            event["ts"] for event in tracer.to_chrome()["traceEvents"]
        ]
        assert timestamps == sorted(timestamps)

    def test_validator_reports_malformed_documents(self) -> None:
        assert validate_chrome_trace({}) == ["document has no traceEvents list"]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "ts": 0.0}, "nonsense"]}
        )
        assert any("missing 'name'" in problem for problem in problems)
        assert any("missing 'dur'" in problem for problem in problems)
        assert any("not an object" in problem for problem in problems)


class TestDropSurfacing:
    def test_truncated_trace_leads_with_metadata_event(self) -> None:
        tracer = Tracer(capacity=4)
        tracer.enable()
        for index in range(10):
            tracer.instant(f"event-{index}")
        document = tracer.to_chrome()
        assert validate_chrome_trace(document) == []
        first = document["traceEvents"][0]
        assert first["ph"] == "M"
        assert first["name"] == "tracer.dropped"
        assert first["args"] == {"dropped": 6, "recorded": 10, "capacity": 4}

    def test_untruncated_trace_has_no_metadata_event(self) -> None:
        tracer = Tracer(capacity=16)
        tracer.enable()
        tracer.instant("only")
        phases = {event["ph"] for event in tracer.to_chrome()["traceEvents"]}
        assert "M" not in phases

    def test_export_warns_on_stderr_when_dropped(self, tmp_path, capsys) -> None:
        tracer = Tracer(capacity=2)
        tracer.enable()
        for index in range(5):
            tracer.instant(f"event-{index}")
        tracer.export_chrome(tmp_path / "trace.json")
        error_output = capsys.readouterr().err
        assert "dropped 3 of 5 events" in error_output
        assert "most recent window" in error_output

    def test_export_is_silent_without_drops(self, tmp_path, capsys) -> None:
        tracer = Tracer()
        tracer.enable()
        tracer.instant("only")
        tracer.export_chrome(tmp_path / "trace.json")
        assert capsys.readouterr().err == ""

    def test_snapshot_surfaces_attached_tracer_drops(self) -> None:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer(capacity=4)
        registry.attach_tracer(tracer)
        assert "trace" not in registry.snapshot()  # idle tracer: no block
        tracer.enable()
        for index in range(10):
            tracer.instant(f"event-{index}")
        trace_block = registry.snapshot()["trace"]
        assert trace_block == {
            "recorded": 10,
            "buffered": 4,
            "dropped": 6,
            "capacity": 4,
        }

    def test_global_snapshot_and_stats_render_trace_block(self) -> None:
        from repro.obs.trace import DEFAULT_CAPACITY

        # The process-wide OBS has TRACE attached at import time.
        obs.enable()
        TRACE.enable(capacity=4)
        try:
            for index in range(9):
                TRACE.instant(f"event-{index}")
            snapshot = obs.snapshot()
            assert snapshot["trace"]["dropped"] == 5
            rendering = obs.render_table()
            assert "== trace ==" in rendering
            assert "dropped" in rendering
        finally:
            TRACE.enable(capacity=DEFAULT_CAPACITY)  # restore the ring size
            TRACE.disable()
            TRACE.reset()
            obs.disable()
            obs.reset()


class TestInstrumentedPaths:
    def test_bulk_load_traces_flushes_and_splits(self, schema3) -> None:
        table = Table(schema3, random_records(1_500, seed=7))
        TRACE.enable()
        anonymizer = RTreeAnonymizer(table, base_k=5, leaf_capacity=9)
        anonymizer.bulk_load(table)
        anonymizer.anonymize(10)
        TRACE.disable()
        names = TRACE.event_names()
        assert "anonymizer.bulk_load" in names
        assert "buffer_tree.flush" in names
        assert "buffer_tree.drain_sweep" in names
        assert "rtree.leaf_split" in names
        assert "anonymizer.release" in names

    def test_disabled_tracer_records_nothing_on_hot_paths(self, schema3) -> None:
        table = Table(schema3, random_records(600, seed=8))
        assert not TRACE.enabled
        anonymizer = RTreeAnonymizer(table, base_k=5, leaf_capacity=9)
        anonymizer.bulk_load(table)
        anonymizer.anonymize(5)
        assert len(TRACE) == 0


class TestCLITrace:
    def test_fig7a_trace_flag_writes_valid_chrome_json(self, tmp_path) -> None:
        from repro.cli import main

        target = tmp_path / "fig7a.trace.json"
        exit_code = main(
            ["fig7a", "--records", "1000", "--trace", str(target)]
        )
        assert exit_code == 0
        document = json.loads(target.read_text())
        assert validate_chrome_trace(document) == []
        names = {event["name"] for event in document["traceEvents"]}
        assert "buffer_tree.flush" in names
        assert "rtree.leaf_split" in names
        # The CLI turns the tracer back off after exporting.
        assert not obs.TRACE.enabled
